"""Process-node electrical scaling model.

A :class:`TechNode` captures the handful of node-level scalars the rest
of the library needs: how fast gates are, how much they load their
drivers, how leaky they are, how large they are, and the nominal supply.
Values are normalized against the 28 nm planar node the paper uses for
the memory die, with a 16 nm FinFET node for the heterogeneous logic
die.  The absolute numbers are representative textbook figures, not
foundry data — the experiments only rely on the *ratios* between nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TechError


@dataclass(frozen=True)
class TechNode:
    """Electrical scaling parameters of one process node.

    Attributes
    ----------
    name:
        Display name, e.g. ``"28nm"``.
    drawn_nm:
        Drawn feature size in nanometres.
    delay_scale:
        Multiplier on every cell intrinsic delay and drive resistance
        relative to the 28 nm reference (FinFET 16 nm ~0.6x).
    cap_scale:
        Multiplier on cell input-pin capacitance (smaller gates load
        their drivers less).
    leakage_scale:
        Multiplier on per-cell leakage power.  FinFETs leak less per
        gate at iso-function despite the tighter pitch.
    energy_scale:
        Multiplier on per-toggle internal switching energy.
    area_scale:
        Multiplier on cell footprint area.
    vdd:
        Nominal supply voltage in volts.  The paper's mixed-node PDN
        runs the 16 nm logic sub-domain at 0.81 V and everything else
        at 0.9 V.
    wire_r_scale:
        Multiplier on lower-metal sheet resistance.  Finer nodes have
        narrower local wires with markedly higher resistance per um —
        the asymmetry that makes borrowing 28 nm thick metal through
        MLS attractive for 16 nm logic nets.
    wire_c_scale:
        Multiplier on lower-metal capacitance per um.
    """

    name: str
    drawn_nm: int
    delay_scale: float
    cap_scale: float
    leakage_scale: float
    energy_scale: float
    area_scale: float
    vdd: float
    wire_r_scale: float
    wire_c_scale: float

    def __post_init__(self) -> None:
        if self.drawn_nm <= 0:
            raise TechError(f"drawn_nm must be positive, got {self.drawn_nm}")
        for field in ("delay_scale", "cap_scale", "leakage_scale",
                      "energy_scale", "area_scale", "vdd",
                      "wire_r_scale", "wire_c_scale"):
            if getattr(self, field) <= 0:
                raise TechError(f"{field} must be positive on node {self.name}")


#: 28 nm planar reference node (memory die in both integrations).
NODE_28NM = TechNode(
    name="28nm",
    drawn_nm=28,
    delay_scale=1.00,
    cap_scale=1.00,
    leakage_scale=1.00,
    energy_scale=1.00,
    area_scale=1.00,
    vdd=0.90,
    wire_r_scale=1.00,
    wire_c_scale=1.00,
)

#: 16 nm FinFET node (logic die in the heterogeneous integration).
#: Gates ~40 % faster and half the area; local wires ~2.2x more
#: resistive per um, which is what MLS relief exploits.
NODE_16NM = TechNode(
    name="16nm",
    drawn_nm=16,
    delay_scale=0.62,
    cap_scale=0.70,
    leakage_scale=0.80,
    energy_scale=0.55,
    area_scale=0.48,
    vdd=0.81,
    wire_r_scale=2.20,
    wire_c_scale=1.10,
)

_NODES = {node.name: node for node in (NODE_28NM, NODE_16NM)}


def get_node(name: str) -> TechNode:
    """Look up a built-in node by name (``"28nm"`` or ``"16nm"``).

    Raises :class:`~repro.errors.TechError` for unknown names so typos
    in experiment configs fail loudly.
    """
    try:
        return _NODES[name]
    except KeyError:
        known = ", ".join(sorted(_NODES))
        raise TechError(f"unknown technology node {name!r}; known: {known}") from None
