"""Parameter (de)serialization to .npz."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.nn.layers import Module


def save_params(module: Module, path: str | Path) -> None:
    """Save all parameters of *module* by stable name."""
    named = module.named_parameters()
    np.savez(Path(path), **{k: p.data for k, p in named.items()})


def load_params(module: Module, path: str | Path) -> None:
    """Load parameters saved by :func:`save_params` (shape-checked)."""
    archive = np.load(Path(path))
    named = module.named_parameters()
    missing = set(named) - set(archive.files)
    if missing:
        raise ValueError(f"checkpoint missing parameters: {sorted(missing)[:4]}")
    for key, param in named.items():
        data = archive[key]
        if data.shape != param.data.shape:
            raise ValueError(
                f"shape mismatch for {key}: checkpoint {data.shape} vs "
                f"model {param.data.shape}")
        param.data = data.astype(np.float64)
