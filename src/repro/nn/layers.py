"""Neural-network layers on the autograd tensor.

Everything the GNN-MLS encoder needs: Linear, LayerNorm, a two-layer
MLP head, multi-head self-attention and pre-LN Transformer encoder
layers, plus sinusoidal positional encodings (Section III-C preserves
path order through positional encodings).
"""

from __future__ import annotations

import numpy as np

from repro.nn.init import xavier_uniform
from repro.nn.tensor import Tensor


class Module:
    """Minimal parameter-container base class."""

    def parameters(self) -> list[Tensor]:
        params: list[Tensor] = []
        for value in self.__dict__.values():
            if isinstance(value, Tensor) and value.requires_grad:
                params.append(value)
            elif isinstance(value, Module):
                params.extend(value.parameters())
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        params.extend(item.parameters())
        return params

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.data.size for p in self.parameters())

    def named_parameters(self) -> dict[str, Tensor]:
        """Stable name -> parameter mapping for serialization."""
        out: dict[str, Tensor] = {}
        for i, p in enumerate(self.parameters()):
            key = p.name or f"param_{i}"
            if key in out:
                key = f"{key}_{i}"
            out[key] = p
        return out


class Linear(Module):
    """y = x W + b."""

    def __init__(self, in_dim: int, out_dim: int,
                 rng: np.random.Generator, name: str = "linear"):
        self.weight = Tensor.param(xavier_uniform(rng, in_dim, out_dim),
                                   name=f"{name}.weight")
        self.bias = Tensor.param(np.zeros(out_dim), name=f"{name}.bias")

    def __call__(self, x: Tensor) -> Tensor:
        return x @ self.weight + self.bias


class LayerNorm(Module):
    """Per-feature normalization over the last axis.

    Reductions never cross the sequence or batch axes, so padded
    (B, L, D) batches need no mask here: every real row normalizes
    exactly as it would in a per-graph (N, D) forward, and padding
    rows stay isolated.
    """

    def __init__(self, dim: int, name: str = "ln", eps: float = 1e-5):
        self.gamma = Tensor.param(np.ones(dim), name=f"{name}.gamma")
        self.beta = Tensor.param(np.zeros(dim), name=f"{name}.beta")
        self.eps = eps

    def __call__(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        centered = x - mu
        var = (centered * centered).mean(axis=-1, keepdims=True)
        inv = (var + self.eps) ** -0.5
        return centered * inv * self.gamma + self.beta


class MLP(Module):
    """Two-layer perceptron with ReLU — the paper's fine-tuning head."""

    def __init__(self, in_dim: int, hidden: int, out_dim: int,
                 rng: np.random.Generator, name: str = "mlp"):
        self.fc1 = Linear(in_dim, hidden, rng, name=f"{name}.fc1")
        self.fc2 = Linear(hidden, out_dim, rng, name=f"{name}.fc2")

    def __call__(self, x: Tensor) -> Tensor:
        return self.fc2(self.fc1(x).relu())


class MultiHeadSelfAttention(Module):
    """Standard scaled dot-product self-attention.

    Accepts one (N, D) sequence — the per-graph reference path — or a
    zero-padded (B, L, D) batch with a boolean (B, L) key-padding mask
    (True = real node).  Masking happens inside the softmax: padded
    keys get exactly-zero attention weight (and gradient), so each
    real row's mixture matches the per-graph computation, and padded
    query rows attend to nothing and come out exactly zero.
    """

    def __init__(self, dim: int, heads: int, rng: np.random.Generator,
                 name: str = "mha"):
        if dim % heads:
            raise ValueError(f"dim {dim} not divisible by heads {heads}")
        self.dim = dim
        self.heads = heads
        self.head_dim = dim // heads
        self.wq = Linear(dim, dim, rng, name=f"{name}.wq")
        self.wk = Linear(dim, dim, rng, name=f"{name}.wk")
        self.wv = Linear(dim, dim, rng, name=f"{name}.wv")
        self.wo = Linear(dim, dim, rng, name=f"{name}.wo")

    def __call__(self, x: Tensor,
                 key_padding_mask: np.ndarray | None = None) -> Tensor:
        if x.ndim == 3:
            return self._batched(x, key_padding_mask)
        n = x.shape[0]
        q = self.wq(x).reshape(n, self.heads, self.head_dim) \
            .transpose(1, 0, 2)
        k = self.wk(x).reshape(n, self.heads, self.head_dim) \
            .transpose(1, 0, 2)
        v = self.wv(x).reshape(n, self.heads, self.head_dim) \
            .transpose(1, 0, 2)
        scores = (q @ k.transpose(0, 2, 1)) * (self.head_dim ** -0.5)
        attn = scores.softmax(axis=-1)
        mixed = attn @ v                      # (H, N, hd)
        merged = mixed.transpose(1, 0, 2).reshape(n, self.dim)
        return self.wo(merged)

    def _batched(self, x: Tensor,
                 key_padding_mask: np.ndarray | None) -> Tensor:
        b, length = x.shape[0], x.shape[1]
        q = self.wq(x).reshape(b, length, self.heads, self.head_dim) \
            .transpose(0, 2, 1, 3)
        k = self.wk(x).reshape(b, length, self.heads, self.head_dim) \
            .transpose(0, 2, 1, 3)
        v = self.wv(x).reshape(b, length, self.heads, self.head_dim) \
            .transpose(0, 2, 1, 3)
        scores = (q @ k.transpose(0, 1, 3, 2)) * (self.head_dim ** -0.5)
        mask = None
        if key_padding_mask is not None:
            # (B, L) key mask -> broadcast over heads and query rows.
            mask = np.asarray(key_padding_mask, dtype=bool)[:, None, None, :]
        attn = scores.softmax(axis=-1, mask=mask)
        mixed = attn @ v                      # (B, H, L, hd)
        merged = mixed.transpose(0, 2, 1, 3).reshape(b, length, self.dim)
        return self.wo(merged)


class TransformerEncoderLayer(Module):
    """Pre-LN encoder layer: x + MHA(LN(x)); x + FFN(LN(x))."""

    def __init__(self, dim: int, heads: int, ff_mult: int,
                 rng: np.random.Generator, name: str = "enc"):
        self.ln1 = LayerNorm(dim, name=f"{name}.ln1")
        self.attn = MultiHeadSelfAttention(dim, heads, rng,
                                           name=f"{name}.attn")
        self.ln2 = LayerNorm(dim, name=f"{name}.ln2")
        self.ff1 = Linear(dim, dim * ff_mult, rng, name=f"{name}.ff1")
        self.ff2 = Linear(dim * ff_mult, dim, rng, name=f"{name}.ff2")

    def __call__(self, x: Tensor,
                 key_padding_mask: np.ndarray | None = None) -> Tensor:
        x = x + self.attn(self.ln1(x), key_padding_mask)
        return x + self.ff2(self.ff1(self.ln2(x)).relu())


class TransformerEncoder(Module):
    """Stack of encoder layers with a final LayerNorm."""

    def __init__(self, dim: int, heads: int, layers: int,
                 rng: np.random.Generator, ff_mult: int = 2,
                 name: str = "encoder"):
        self.layers = [TransformerEncoderLayer(dim, heads, ff_mult, rng,
                                               name=f"{name}.l{i}")
                       for i in range(layers)]
        self.final_ln = LayerNorm(dim, name=f"{name}.final_ln")

    def __call__(self, x: Tensor,
                 key_padding_mask: np.ndarray | None = None) -> Tensor:
        for layer in self.layers:
            x = layer(x, key_padding_mask)
        return self.final_ln(x)


def positional_encoding(length: int, dim: int) -> np.ndarray:
    """Sinusoidal position encodings, shape (length, dim)."""
    positions = np.arange(length)[:, None]
    div = np.exp(np.arange(0, dim, 2) * (-np.log(10000.0) / dim))
    enc = np.zeros((length, dim))
    enc[:, 0::2] = np.sin(positions * div)
    enc[:, 1::2] = np.cos(positions * div[: dim // 2])
    return enc
