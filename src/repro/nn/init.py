"""Deterministic weight initialization."""

from __future__ import annotations

import numpy as np


def xavier_uniform(rng: np.random.Generator, fan_in: int,
                   fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform init for a (fan_in, fan_out) matrix."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))
