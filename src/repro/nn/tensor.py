"""Reverse-mode autograd tensor.

A deliberately small engine: float64 NumPy arrays, dynamic graph,
broadcasting-aware gradients.  Every op records a backward closure;
:meth:`Tensor.backward` topologically sorts the graph and accumulates.
The op set is exactly what the GNN-MLS model needs — add/mul/matmul,
elementwise nonlinearities, reductions, softmax, slicing, concat.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

import numpy as np


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce *grad* back to *shape* after NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum out prepended axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum along broadcast (size-1) axes.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """An autograd node wrapping a float64 ndarray."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents",
                 "name")

    def __init__(self, data, requires_grad: bool = False,
                 name: str = ""):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = requires_grad
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: tuple["Tensor", ...] = ()
        self.name = name

    # -- construction helpers ------------------------------------------------

    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def param(data, name: str = "") -> "Tensor":
        """A trainable parameter."""
        return Tensor(data, requires_grad=True, name=name)

    # -- plumbing ----------------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy())

    def _make(self, data: np.ndarray, parents: Iterable["Tensor"],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        parents = tuple(parents)
        out = Tensor(data)
        if any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64),
                            self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor (default seed: ones)."""
        if grad is None:
            grad = np.ones_like(self.data)
        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in seen:
                    stack.append((parent, False))
        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    # -- arithmetic ------------------------------------------------------------

    def __add__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)
        return self._make(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad):
            if self.requires_grad:
                self._accumulate(-grad)
        return self._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        return self + (-other)

    def __rsub__(self, other) -> "Tensor":
        return (-self) + other

    def __mul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)
        return self._make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad / other.data)
            if other.requires_grad:
                other._accumulate(-grad * self.data / (other.data ** 2))
        return self._make(self.data / other.data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")

        def backward(grad):
            if self.requires_grad:
                self._accumulate(
                    grad * exponent * self.data ** (exponent - 1))
        return self._make(self.data ** exponent, (self,), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad @ np.swapaxes(other.data, -1, -2))
            if other.requires_grad:
                other._accumulate(np.swapaxes(self.data, -1, -2) @ grad)
        return self._make(self.data @ other.data, (self, other), backward)

    # -- elementwise -------------------------------------------------------------

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data)
        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad / self.data)
        return self._make(np.log(self.data), (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data ** 2))
        return self._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60, 60)))

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))
        return self._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * mask)
        return self._make(self.data * mask, (self,), backward)

    # -- reductions / shaping --------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.data.shape))
        return self._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None \
            else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape: int) -> "Tensor":
        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.reshape(self.data.shape))
        return self._make(self.data.reshape(shape), (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        axes = axes or tuple(reversed(range(self.data.ndim)))
        inverse = np.argsort(axes)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))
        return self._make(self.data.transpose(axes), (self,), backward)

    def __getitem__(self, key) -> "Tensor":
        def backward(grad):
            if self.requires_grad:
                g = np.zeros_like(self.data)
                np.add.at(g, key, grad)
                self._accumulate(g)
        return self._make(self.data[key], (self,), backward)

    def softmax(self, axis: int = -1,
                mask: Optional[np.ndarray] = None) -> "Tensor":
        """Softmax along *axis*; optional boolean *mask* (True = keep).

        Masked-out entries get an exactly-zero probability and an
        exactly-zero gradient, and the max/exp/sum over the kept
        entries is the same arithmetic an unmasked softmax over just
        those entries would do — which is what lets padded (B, L, D)
        batches reproduce the per-graph path.  Slices with every entry
        masked come out all-zero (a padding row attends to nothing).
        """
        if mask is None:
            shifted = self.data - self.data.max(axis=axis, keepdims=True)
            exp = np.exp(shifted)
            out_data = exp / exp.sum(axis=axis, keepdims=True)
        else:
            keep = np.broadcast_to(np.asarray(mask, dtype=bool),
                                   self.data.shape)
            neg = np.where(keep, self.data, -np.inf)
            peak = neg.max(axis=axis, keepdims=True)
            # All-masked slices have peak -inf; any finite stand-in
            # works because their exp terms are forced to zero below.
            peak = np.where(np.isfinite(peak), peak, 0.0)
            exp = np.where(keep, np.exp(self.data - peak), 0.0)
            denom = exp.sum(axis=axis, keepdims=True)
            out_data = exp / np.where(denom == 0.0, 1.0, denom)

        def backward(grad):
            if not self.requires_grad:
                return
            dot = (grad * out_data).sum(axis=axis, keepdims=True)
            self._accumulate(out_data * (grad - dot))
        return self._make(out_data, (self,), backward)

    @staticmethod
    def concat(tensors: list["Tensor"], axis: int = 0) -> "Tensor":
        datas = [t.data for t in tensors]
        out_data = np.concatenate(datas, axis=axis)
        sizes = [d.shape[axis] for d in datas]
        offsets = np.cumsum([0] + sizes)

        def backward(grad):
            for t, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
                if t.requires_grad:
                    index = [slice(None)] * grad.ndim
                    index[axis] = slice(lo, hi)
                    t._accumulate(grad[tuple(index)])
        dummy = Tensor(out_data)
        if any(t.requires_grad for t in tensors):
            dummy.requires_grad = True
            dummy._parents = tuple(tensors)
            dummy._backward = backward
        return dummy

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flag = "*" if self.requires_grad else ""
        return f"Tensor{flag}(shape={self.data.shape})"
