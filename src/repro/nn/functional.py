"""Loss functions and stateless helpers."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor


def binary_cross_entropy_with_logits(logits: Tensor, targets: Tensor,
                                     pos_weight: float = 1.0) -> Tensor:
    """Numerically-stable BCE on raw logits.

    ``pos_weight`` scales the positive-class term, the standard recipe
    for the imbalanced MLS labels (most nets should not share).
    """
    # log(1 + exp(x)) == softplus(x); build it stably from primitives.
    probs = logits.sigmoid()
    eps = 1e-7
    p = probs * (1.0 - 2 * eps) + eps
    loss = -(targets * p.log() * pos_weight
             + (1.0 - targets) * (1.0 - p).log())
    return loss.mean()


def dgi_loss(pos_scores: Tensor, neg_scores: Tensor) -> Tensor:
    """Deep Graph Infomax objective (paper Eq. 3, standard BCE form).

    Positive node/summary scores are pushed toward 1, corrupted-node
    scores toward 0; both passed through the sigmoid that the paper
    adopts "to map inner product to probability and aid training
    stability".
    """
    eps = 1e-7
    pos = pos_scores.sigmoid() * (1.0 - 2 * eps) + eps
    neg = neg_scores.sigmoid() * (1.0 - 2 * eps) + eps
    pos_term = pos.log().mean()
    neg_term = (1.0 - neg).log().mean()
    return -(pos_term + neg_term)


def masked_mean(x: Tensor, mask: np.ndarray, axis: int = 1) -> Tensor:
    """Mean of *x* over *axis* counting only entries where *mask*.

    *mask* is a boolean (or 0/1) array broadcastable to ``x`` once a
    trailing feature axis is appended — the (B, L) key-padding mask of
    a padded (B, L, D) batch.  Masked entries contribute an exact zero
    (``garbage * 0.0 == 0.0``), so per-row results match the
    unpadded per-graph reduction; all-masked rows come out zero.
    """
    weights = np.asarray(mask, dtype=np.float64)
    if weights.ndim == x.ndim - 1:
        weights = weights[..., None]
    counts = weights.sum(axis=axis)
    counts = np.where(counts == 0.0, 1.0, counts)
    return (x * Tensor(weights)).sum(axis=axis) * Tensor(1.0 / counts)


def masked_bce_with_logits(logits: Tensor, targets: np.ndarray,
                           mask: np.ndarray,
                           pos_weight: float = 1.0) -> Tensor:
    """Batched BCE over a padded (B, L) logit matrix with per-row masks.

    Per row the loss is the mean over that row's *mask* (decidable,
    non-padding) entries — the same scalar
    :func:`binary_cross_entropy_with_logits` computes for one graph's
    selected nodes — and the batch loss is the mean over rows that
    have at least one masked-in entry.  Rows with none (all-padding,
    or no decidable nodes) contribute exact zeros and are excluded
    from the row count, so a batch of one reproduces the per-graph
    loss and its gradients.
    """
    weights = np.asarray(mask, dtype=np.float64)
    probs = logits.sigmoid()
    eps = 1e-7
    p = probs * (1.0 - 2 * eps) + eps
    t = np.asarray(targets, dtype=np.float64)
    elementwise = -(Tensor(t * pos_weight) * p.log()
                    + Tensor(1.0 - t) * (1.0 - p).log())
    counts = weights.sum(axis=-1)
    valid = counts > 0.0
    row_scale = np.where(valid, 1.0 / np.maximum(counts, 1.0), 0.0)
    per_row = (elementwise * Tensor(weights)).sum(axis=-1) \
        * Tensor(row_scale)
    n_valid = max(int(valid.sum()), 1)
    return per_row.sum() * (1.0 / n_valid)


def masked_dgi_loss(pos_scores: Tensor, neg_scores: Tensor,
                    mask: np.ndarray) -> Tensor:
    """Batched DGI objective over padded (B, L) score matrices.

    Each row's positive/negative terms are masked means over its real
    nodes — exactly :func:`dgi_loss` on that graph alone — and the
    batch loss is the mean of the per-row losses.
    """
    weights = np.asarray(mask, dtype=np.float64)
    eps = 1e-7
    pos = pos_scores.sigmoid() * (1.0 - 2 * eps) + eps
    neg = neg_scores.sigmoid() * (1.0 - 2 * eps) + eps
    counts = weights.sum(axis=-1)
    row_scale = 1.0 / np.where(counts == 0.0, 1.0, counts)
    pos_term = (pos.log() * Tensor(weights)).sum(axis=-1) \
        * Tensor(row_scale)
    neg_term = ((1.0 - neg).log() * Tensor(weights)).sum(axis=-1) \
        * Tensor(row_scale)
    per_row = -(pos_term + neg_term)
    return per_row.sum() * (1.0 / max(pos_scores.shape[0], 1))


def accuracy(logits: np.ndarray, targets: np.ndarray) -> float:
    """Fraction of correct binary predictions at threshold 0."""
    pred = (logits >= 0.0).astype(np.float64)
    return float((pred == targets).mean())
