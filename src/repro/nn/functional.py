"""Loss functions and stateless helpers."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor


def binary_cross_entropy_with_logits(logits: Tensor, targets: Tensor,
                                     pos_weight: float = 1.0) -> Tensor:
    """Numerically-stable BCE on raw logits.

    ``pos_weight`` scales the positive-class term, the standard recipe
    for the imbalanced MLS labels (most nets should not share).
    """
    # log(1 + exp(x)) == softplus(x); build it stably from primitives.
    probs = logits.sigmoid()
    eps = 1e-7
    p = probs * (1.0 - 2 * eps) + eps
    loss = -(targets * p.log() * pos_weight
             + (1.0 - targets) * (1.0 - p).log())
    return loss.mean()


def dgi_loss(pos_scores: Tensor, neg_scores: Tensor) -> Tensor:
    """Deep Graph Infomax objective (paper Eq. 3, standard BCE form).

    Positive node/summary scores are pushed toward 1, corrupted-node
    scores toward 0; both passed through the sigmoid that the paper
    adopts "to map inner product to probability and aid training
    stability".
    """
    eps = 1e-7
    pos = pos_scores.sigmoid() * (1.0 - 2 * eps) + eps
    neg = neg_scores.sigmoid() * (1.0 - 2 * eps) + eps
    pos_term = pos.log().mean()
    neg_term = (1.0 - neg).log().mean()
    return -(pos_term + neg_term)


def accuracy(logits: np.ndarray, targets: np.ndarray) -> float:
    """Fraction of correct binary predictions at threshold 0."""
    pred = (logits >= 0.0).astype(np.float64)
    return float((pred == targets).mean())
