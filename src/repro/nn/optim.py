"""Optimizers."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor


class SGD:
    """Plain SGD with optional momentum."""

    def __init__(self, params: list[Tensor], lr: float = 1e-2,
                 momentum: float = 0.0):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.params = list(params)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            v *= self.momentum
            v -= self.lr * p.grad
            p.data += v

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


class Adam:
    """Adam with bias correction (Kingma & Ba)."""

    def __init__(self, params: list[Tensor], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.params = list(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= b1
            m += (1 - b1) * grad
            v *= b2
            v += (1 - b2) * grad * grad
            m_hat = m / (1 - b1 ** self._t)
            v_hat = v / (1 - b2 ** self._t)
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()
