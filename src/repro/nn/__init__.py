"""A small reverse-mode autograd framework on NumPy.

Replaces PyTorch/PyG for this reproduction (no network access, no GPU
needed at our scale).  Provides the pieces GNN-MLS requires: a
:class:`~repro.nn.tensor.Tensor` with broadcasting-aware backprop,
Linear/LayerNorm/multi-head-attention/Transformer layers, Adam, and
deterministic parameter (de)serialization.  The model is tiny (3
layers x 3 heads on <=64-dim embeddings), so NumPy trains it in
seconds, bit-reproducibly.
"""

from repro.nn.tensor import Tensor
from repro.nn import functional
from repro.nn.layers import (
    Module,
    Linear,
    LayerNorm,
    MLP,
    MultiHeadSelfAttention,
    TransformerEncoderLayer,
    TransformerEncoder,
    positional_encoding,
)
from repro.nn.optim import SGD, Adam
from repro.nn.init import xavier_uniform
from repro.nn.serialize import save_params, load_params

__all__ = [
    "Tensor",
    "functional",
    "Module",
    "Linear",
    "LayerNorm",
    "MLP",
    "MultiHeadSelfAttention",
    "TransformerEncoderLayer",
    "TransformerEncoder",
    "positional_encoding",
    "SGD",
    "Adam",
    "xavier_uniform",
    "save_params",
    "load_params",
]
