"""Command-line interface: ``python -m repro <command>``.

Commands
--------
flow       run one (benchmark, selector) flow and print the metric row
table      regenerate a paper table (1, 3, 4, 5, 6)
timing     run a flow and print the signoff-style timing report
congestion run a flow and print routing utilization + a heatmap
export     generate a benchmark netlist and write structural Verilog
list       list benchmark keys and selectors

Every command also takes the observability flags (see
:mod:`repro.obs`): ``--trace PATH`` records hierarchical spans to
JSONL plus a ``chrome://tracing``-loadable sibling, ``--metrics PATH``
dumps the run's counters/gauges/stats, and ``--log-level`` adjusts the
structured ``repro`` logger (default ``info`` output is byte-identical
to the historical prints).

Examples
--------
python -m repro flow --benchmark maeri16_hetero --selector gnn
python -m repro flow --benchmark maeri16_hetero --verilog maeri16.v
python -m repro table --table 4
python -m repro timing --benchmark a7_hetero --selector none --paths 3
python -m repro export --benchmark maeri16_hetero --out maeri16.v
python -m repro flow --selector none --trace run.jsonl --metrics run.json
"""

from __future__ import annotations

import argparse
import sys

from repro.core.flow import SELECTORS
from repro.harness.designs import BENCHMARKS, DEFAULT_EXPERIMENT_SEED, \
    get_benchmark
from repro.harness.tables import run_benchmark_flow
from repro.obs import (LEVELS, chrome_trace_path, get_logger, metrics,
                       set_log_level, trace)
from repro.parallel import ParallelConfig

log = get_logger("repro.cli")


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--benchmark", default="maeri16_hetero",
                        choices=sorted(BENCHMARKS))
    parser.add_argument("--selector", default="gnn",
                        choices=list(SELECTORS))
    parser.add_argument("--seed", type=int,
                        default=DEFAULT_EXPERIMENT_SEED)
    _add_parallel(parser)
    parser.add_argument("--place-region-parallel", action="store_true",
                        help="opt-in block-Jacobi region-parallel "
                             "bisection placement (deterministic at any "
                             "worker count, but placements differ "
                             "slightly from the serial joint solve)")


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_parallel(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=_positive_int, default=1,
                        help="worker processes for the what-if oracle, "
                             "dataset build, fault simulation and "
                             "wavefront global routing "
                             "(1 = serial; results are identical)")
    parser.add_argument("--chunk-size", type=_positive_int, default=None,
                        help="items per worker task (default: auto)")


def _add_obs(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("observability")
    group.add_argument("--trace", metavar="PATH", default=None,
                       help="record hierarchical spans to PATH (JSONL) "
                            "plus a chrome://tracing sibling "
                            "(PATH with a .chrome.json suffix)")
    group.add_argument("--metrics", metavar="PATH", default=None,
                       help="write the run's counters/gauges/stats "
                            "to PATH as JSON")
    group.add_argument("--log-level", default="info", choices=LEVELS,
                       help="repro logger threshold (default: info)")


def _parallel_config(args) -> ParallelConfig:
    return ParallelConfig(workers=args.workers, chunk_size=args.chunk_size)


def _cmd_list(_args) -> int:
    log.info("benchmarks:")
    for key, spec in sorted(BENCHMARKS.items()):
        log.info(f"  {key:<18} {spec.paper_name:<28} "
                 f"@{spec.target_freq_mhz:.0f} MHz "
                 f"(paper {spec.paper_target_mhz:.0f})")
    log.info(f"selectors: {', '.join(SELECTORS)}")
    return 0


def _verilog_spec(spec, path):
    """A copy of *spec* whose factory imports *path* instead of
    generating — the tech/freq/activity context stays the benchmark's.
    """
    import dataclasses

    from repro.netlist.verilog import read_verilog

    def factory(libraries, seeds):
        del seeds                       # import is seed-independent
        return read_verilog(path, libraries)

    return dataclasses.replace(
        spec, key=f"{spec.key}+verilog",
        paper_name=f"{spec.paper_name} [import {path}]", factory=factory)


def _cmd_flow(args) -> int:
    spec = get_benchmark(args.benchmark)
    if args.verilog:
        spec = _verilog_spec(spec, args.verilog)
    report = run_benchmark_flow(spec, args.selector, seed=args.seed,
                                parallel=_parallel_config(args),
                                place_region_parallel=
                                args.place_region_parallel)
    log.info(f"{spec.paper_name} — selector {args.selector}")
    for key, value in report.row().items():
        log.info(f"  {key:<18} {value:>12.3f}" if isinstance(value, float)
                 else f"  {key:<18} {value:>12}")
    for stage, seconds in report.stage_runtime_s.items():
        log.debug(f"  {stage:<22} {seconds:>10.3f} s")
    return 0


def _cmd_table(args) -> int:
    from repro.harness import (format_table, table1_single_net,
                               table3_dft_comparison, table4_heterogeneous,
                               table5_homogeneous, table6_testable)
    from repro.harness.tables import _PPA_METRICS
    parallel = _parallel_config(args)
    if args.table == 1:
        for row in table1_single_net(args.seed):
            log.info("%s", row)
    elif args.table == 3:
        for strategy, row in table3_dft_comparison(
                args.seed, parallel=parallel).items():
            log.info("%s %s", strategy, row)
    elif args.table in (4, 5, 6):
        builder = {4: table4_heterogeneous, 5: table5_homogeneous,
                   6: table6_testable}[args.table]
        columns = ["none", "gnn"] if args.table == 6 \
            else ["none", "sota", "gnn"]
        for bench, rows in builder(args.seed, parallel=parallel).items():
            log.info(format_table(f"Table {args.table} ({bench})",
                                  columns, rows, _PPA_METRICS))
            log.info("")
    else:
        log.error(f"unknown table {args.table}")
        return 2
    return 0


def _cmd_timing(args) -> int:
    from repro.timing.report import render_summary
    spec = get_benchmark(args.benchmark)
    report = run_benchmark_flow(spec, args.selector, seed=args.seed,
                                parallel=_parallel_config(args),
                                place_region_parallel=
                                args.place_region_parallel)
    log.info(render_summary(report.final_sta, num_paths=args.paths))
    return 0


def _cmd_congestion(args) -> int:
    from repro.route.report import render_heatmap, render_utilization
    spec = get_benchmark(args.benchmark)
    report = run_benchmark_flow(spec, args.selector, seed=args.seed,
                                parallel=_parallel_config(args),
                                place_region_parallel=
                                args.place_region_parallel)
    routing = report.design.require_routing()
    log.info(render_utilization(routing))
    log.info("")
    top = routing.grid.top_pair(0)
    log.info(render_heatmap(routing, tier=0, pair=top))
    return 0


def _cmd_export(args) -> int:
    from repro.netlist.verilog import write_verilog
    spec = get_benchmark(args.benchmark)
    netlist = spec.factory(spec.tech().libraries, spec.seeds(args.seed))
    write_verilog(netlist, args.out)
    stats = netlist.stats()
    log.info(f"wrote {args.out}: {stats['instances']} instances, "
             f"{stats['nets']} nets")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="GNN-MLS reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    listing = sub.add_parser("list", help="list benchmarks and selectors")

    flow = sub.add_parser("flow", help="run one flow, print its row")
    _add_common(flow)
    flow.add_argument("--verilog", metavar="FILE", default=None,
                      help="import FILE (structural Verilog, e.g. from "
                           "'repro export') as the design instead of "
                           "generating the benchmark netlist; tech and "
                           "target frequency still come from "
                           "--benchmark")

    table = sub.add_parser("table", help="regenerate a paper table")
    table.add_argument("--table", type=int, required=True,
                       choices=(1, 3, 4, 5, 6))
    table.add_argument("--seed", type=int,
                       default=DEFAULT_EXPERIMENT_SEED)
    _add_parallel(table)

    timing = sub.add_parser("timing", help="signoff-style timing report")
    _add_common(timing)
    timing.add_argument("--paths", type=int, default=3)

    congestion = sub.add_parser("congestion",
                                help="routing utilization + heatmap")
    _add_common(congestion)

    export = sub.add_parser("export", help="write structural Verilog")
    _add_common(export)
    export.add_argument("--out", required=True)

    for command in (listing, flow, table, timing, congestion, export):
        _add_obs(command)

    args = parser.parse_args(argv)
    set_log_level(args.log_level)
    if args.trace:
        trace.enable()
    handler = {
        "list": _cmd_list,
        "flow": _cmd_flow,
        "table": _cmd_table,
        "timing": _cmd_timing,
        "congestion": _cmd_congestion,
        "export": _cmd_export,
    }[args.command]
    code = handler(args)
    if args.trace:
        spans = trace.write_jsonl(args.trace)
        chrome = chrome_trace_path(args.trace)
        trace.write_chrome(chrome)
        trace.disable()
        trace.reset()
        log.info(f"wrote {spans} spans to {args.trace} "
                 f"(chrome: {chrome})")
    if args.metrics:
        metrics.write_json(args.metrics)
        log.info(f"wrote metrics to {args.metrics}")
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
