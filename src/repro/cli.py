"""Command-line interface: ``python -m repro <command>``.

Commands
--------
flow       run one (benchmark, selector) flow and print the metric row
table      regenerate a paper table (1, 3, 4, 5, 6)
timing     run a flow and print the signoff-style timing report
congestion run a flow and print routing utilization + a heatmap
export     generate a benchmark netlist and write structural Verilog
service    flow-as-a-service daemon: start | stop | status | submit
trace      analyze trace files: report | diff | gate
list       list benchmark keys and selectors

``flow``/``timing``/``congestion`` accept ``--store PATH`` to read
through (and write back) the persistent content-addressed artifact
store — warm invocations skip generate/partition/place/buffer, or
replay the whole stored report bit-identically.  ``service start``
puts an async daemon in front of the same store on a unix socket.

Every command also takes the observability flags (see
:mod:`repro.obs`): ``--trace PATH`` records hierarchical spans to
JSONL plus a ``chrome://tracing``-loadable sibling, ``--metrics PATH``
dumps the run's counters/gauges/stats, and ``--log-level`` adjusts the
structured ``repro`` logger (default ``info`` output is byte-identical
to the historical prints).  ``--trace-max-mb N`` switches tracing to a
size-capped **rotating** stream (``PATH`` → ``PATH.1`` → ...) for
long runs; ``service start`` always streams its trace this way.  The
``trace`` group analyzes what the tracer wrote: ``trace report`` for
self/cumulative-time profiles and critical paths, ``trace diff`` to
localize where wall-clock moved between two runs, and ``trace gate``
to check the perf-trend ledger against ``benchmarks/budgets.json``.

Examples
--------
python -m repro flow --benchmark maeri16_hetero --selector gnn
python -m repro flow --benchmark maeri16_hetero --verilog maeri16.v
python -m repro table --table 4
python -m repro timing --benchmark a7_hetero --selector none --paths 3
python -m repro export --benchmark maeri16_hetero --out maeri16.v
python -m repro flow --selector none --trace run.jsonl --metrics run.json
python -m repro flow --benchmark maeri16_hetero --store .repro/store
python -m repro service start --detach
python -m repro service submit --benchmark maeri16_hetero --selector none
python -m repro service status --json
python -m repro service status --metrics
python -m repro trace report run.jsonl --top 15
python -m repro trace diff direct.jsonl cg.jsonl
python -m repro trace gate --update-budgets
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro.core.flow import PLACE_SOLVERS, SELECTORS
from repro.harness.designs import BENCHMARKS, DEFAULT_EXPERIMENT_SEED, \
    get_benchmark
from repro.harness.tables import run_benchmark_flow
from repro.obs import (LEVELS, chrome_trace_path, get_logger, metrics,
                       set_log_level, trace)
from repro.parallel import ParallelConfig

log = get_logger("repro.cli")

#: Default daemon endpoints, overridable via the environment.
DEFAULT_SOCKET = os.environ.get("REPRO_SERVICE_SOCKET",
                                ".repro/service.sock")
DEFAULT_STORE = os.environ.get("REPRO_STORE", ".repro/store")


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--benchmark", default="maeri16_hetero",
                        choices=sorted(BENCHMARKS))
    parser.add_argument("--selector", default="gnn",
                        choices=list(SELECTORS))
    parser.add_argument("--seed", type=int,
                        default=DEFAULT_EXPERIMENT_SEED)
    _add_parallel(parser)
    parser.add_argument("--place-region-parallel", action="store_true",
                        help="opt-in block-Jacobi region-parallel "
                             "bisection placement (deterministic at any "
                             "worker count, but placements differ "
                             "slightly from the serial joint solve)")
    parser.add_argument("--place-solver", default="direct",
                        choices=list(PLACE_SOLVERS),
                        help="bisection solve backend: 'direct' "
                             "factorizes every level (bit-identical "
                             "baseline), 'cg' reuses one SuperLU "
                             "factorization as a PCG preconditioner "
                             "across levels (equal within tolerance, "
                             "fewer factorizations), 'auto' picks by "
                             "system size")
    parser.add_argument("--route-batch", type=float, default=None,
                        metavar="MS",
                        help="target milliseconds of routing work per "
                             "wavefront pool dispatch (speculative "
                             "multi-wave batching; 0 = one wave per "
                             "dispatch; default: RouteConfig.batch_ms). "
                             "Scheduling only — results are identical")
    parser.add_argument("--select-batch", type=int, default=None,
                        metavar="N",
                        help="graphs per padded minibatch in the GNN "
                             "selector leg (DGI, fine-tune, and "
                             "inference share the setting); 1 runs "
                             "the per-graph reference schedule "
                             "(default: TrainConfig.batch_size)")
    parser.add_argument("--store", metavar="PATH", default=None,
                        help="persistent content-addressed artifact "
                             "store to read through / write back "
                             "(warm runs skip prepare or replay the "
                             "stored report)")


def _store(args):
    path = getattr(args, "store", None)
    if not path:
        return None
    from repro.service.store import ArtifactStore
    return ArtifactStore(path)


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_parallel(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=_positive_int, default=1,
                        help="worker processes for the what-if oracle, "
                             "dataset build, fault simulation and "
                             "wavefront global routing "
                             "(1 = serial; results are identical)")
    parser.add_argument("--chunk-size", type=_positive_int, default=None,
                        help="items per worker task (default: auto)")


def _add_obs(parser: argparse.ArgumentParser,
             metrics_flag: bool = True) -> None:
    group = parser.add_argument_group("observability")
    group.add_argument("--trace", metavar="PATH", default=None,
                       help="record hierarchical spans to PATH (JSONL) "
                            "plus a chrome://tracing sibling "
                            "(PATH with a .chrome.json suffix)")
    group.add_argument("--trace-max-mb", type=_positive_int,
                       default=None, metavar="MB",
                       help="stream spans to --trace with size-based "
                            "rotation (PATH -> PATH.1 -> ...) instead "
                            "of buffering; no chrome sibling in this "
                            "mode")
    if metrics_flag:
        group.add_argument("--metrics", metavar="PATH", default=None,
                           help="write the run's counters/gauges/stats"
                                "/histograms to PATH as JSON")
    group.add_argument("--log-level", default="info", choices=LEVELS,
                       help="repro logger threshold (default: info)")


def _parallel_config(args) -> ParallelConfig:
    return ParallelConfig(workers=args.workers, chunk_size=args.chunk_size)


def _cmd_list(_args) -> int:
    log.info("benchmarks:")
    for key, spec in sorted(BENCHMARKS.items()):
        log.info(f"  {key:<18} {spec.paper_name:<28} "
                 f"@{spec.target_freq_mhz:.0f} MHz "
                 f"(paper {spec.paper_target_mhz:.0f})")
    log.info(f"selectors: {', '.join(SELECTORS)}")
    return 0


def _verilog_spec(spec, path):
    """A copy of *spec* whose factory imports *path* instead of
    generating — the tech/freq/activity context stays the benchmark's.
    """
    import dataclasses

    from repro.netlist.verilog import read_verilog

    def factory(libraries, seeds):
        del seeds                       # import is seed-independent
        return read_verilog(path, libraries)

    return dataclasses.replace(
        spec, key=f"{spec.key}+verilog",
        paper_name=f"{spec.paper_name} [import {path}]", factory=factory)


def _cmd_flow(args) -> int:
    spec = get_benchmark(args.benchmark)
    if args.verilog:
        spec = _verilog_spec(spec, args.verilog)
    store = _store(args)
    report = run_benchmark_flow(spec, args.selector, seed=args.seed,
                                parallel=_parallel_config(args),
                                place_region_parallel=
                                args.place_region_parallel,
                                place_solver=args.place_solver,
                                route_batch_ms=args.route_batch,
                                select_batch=args.select_batch,
                                store=store)
    if store is not None:
        store.flush()           # persist batched recency updates
    log.info(f"{spec.paper_name} — selector {args.selector}")
    for key, value in report.row().items():
        log.info(f"  {key:<18} {value:>12.3f}" if isinstance(value, float)
                 else f"  {key:<18} {value:>12}")
    for stage, seconds in report.stage_runtime_s.items():
        log.debug(f"  {stage:<22} {seconds:>10.3f} s")
    return 0


def _cmd_table(args) -> int:
    from repro.harness import (format_table, table1_single_net,
                               table3_dft_comparison, table4_heterogeneous,
                               table5_homogeneous, table6_testable)
    from repro.harness.tables import _PPA_METRICS
    parallel = _parallel_config(args)
    if args.table == 1:
        for row in table1_single_net(args.seed):
            log.info("%s", row)
    elif args.table == 3:
        for strategy, row in table3_dft_comparison(
                args.seed, parallel=parallel).items():
            log.info("%s %s", strategy, row)
    elif args.table in (4, 5, 6):
        builder = {4: table4_heterogeneous, 5: table5_homogeneous,
                   6: table6_testable}[args.table]
        columns = ["none", "gnn"] if args.table == 6 \
            else ["none", "sota", "gnn"]
        for bench, rows in builder(args.seed, parallel=parallel).items():
            log.info(format_table(f"Table {args.table} ({bench})",
                                  columns, rows, _PPA_METRICS))
            log.info("")
    else:
        log.error(f"unknown table {args.table}")
        return 2
    return 0


def _cmd_timing(args) -> int:
    from repro.timing.report import render_summary
    spec = get_benchmark(args.benchmark)
    store = _store(args)
    report = run_benchmark_flow(spec, args.selector, seed=args.seed,
                                parallel=_parallel_config(args),
                                place_region_parallel=
                                args.place_region_parallel,
                                place_solver=args.place_solver,
                                route_batch_ms=args.route_batch,
                                select_batch=args.select_batch,
                                store=store)
    if store is not None:
        store.flush()
    log.info(render_summary(report.final_sta, num_paths=args.paths))
    return 0


def _cmd_congestion(args) -> int:
    from repro.route.report import render_heatmap, render_utilization
    spec = get_benchmark(args.benchmark)
    store = _store(args)
    report = run_benchmark_flow(spec, args.selector, seed=args.seed,
                                parallel=_parallel_config(args),
                                place_region_parallel=
                                args.place_region_parallel,
                                place_solver=args.place_solver,
                                route_batch_ms=args.route_batch,
                                select_batch=args.select_batch,
                                store=store)
    if store is not None:
        store.flush()
    routing = report.design.require_routing()
    log.info(render_utilization(routing))
    log.info("")
    top = routing.grid.top_pair(0)
    log.info(render_heatmap(routing, tier=0, pair=top))
    return 0


def _service_start(args) -> int:
    from repro.service.daemon import (FlowService, ServiceConfig,
                                      ServiceError)
    config = ServiceConfig(
        socket_path=args.socket,
        store_root=args.store or DEFAULT_STORE,
        budget_bytes=args.budget_mb * (1 << 20),
        flow_workers=args.flow_workers,
    )
    if args.detach:
        import subprocess
        from repro.service.client import wait_for_service
        argv = [sys.executable, "-m", "repro", "service", "start",
                "--socket", config.socket_path,
                "--store", config.store_root,
                "--budget-mb", str(args.budget_mb),
                "--flow-workers", str(args.flow_workers),
                "--log-level", args.log_level]
        if args.trace:
            argv += ["--trace", args.trace]
            if args.trace_max_mb:
                argv += ["--trace-max-mb", str(args.trace_max_mb)]
            # The daemon child owns the trace file; the parent must
            # not clobber it with its own (empty) buffer at exit.
            args.trace = None
        log_dir = Path(config.store_root)
        log_dir.mkdir(parents=True, exist_ok=True)
        log_file = open(log_dir / "daemon.log", "ab")
        proc = subprocess.Popen(argv, stdout=log_file, stderr=log_file,
                                start_new_session=True)
        wait_for_service(config.socket_path, timeout=120.0)
        log.info(f"service started: pid {proc.pid}, "
                 f"socket {config.socket_path}, "
                 f"store {config.store_root} "
                 f"(log: {log_dir / 'daemon.log'})")
        return 0
    import asyncio
    try:
        asyncio.run(FlowService(config).serve())
    except ServiceError as exc:
        log.error(str(exc))
        return 1
    except KeyboardInterrupt:           # pragma: no cover - interactive
        log.info("interrupted; service stopped")
    return 0


def _service_client(args):
    from repro.service.client import ServiceClient
    return ServiceClient(args.socket,
                         timeout=getattr(args, "timeout", 900.0))


def _service_stop(args) -> int:
    response = _service_client(args).shutdown()
    log.info(f"service on {args.socket}: "
             f"{'stopped' if response.get('ok') else response}")
    return 0 if response.get("ok") else 1


def _service_status(args) -> int:
    client = _service_client(args)
    if args.metrics:
        # Scrape the daemon's Prometheus exposition verbatim — pipe
        # this into a node_exporter textfile or promtool check.
        print(client.metrics_prometheus(), end="")
        return 0
    response = client.status()
    if args.json:
        print(json.dumps(response, indent=2, sort_keys=True))
        return 0 if response.get("ok") else 1
    log.info(f"service pid {response['pid']} on {response['socket']} "
             f"(uptime {response['uptime_s']:.0f}s)")
    log.info(f"  queue depth {response['queue_depth']}, "
             f"inflight {response['inflight']}, "
             f"flow workers {response['flow_workers']}")
    for req in response.get("inflight_requests", []):
        log.info(f"  inflight {req['id']}: {req['benchmark']}/"
                 f"{req['selector']} (age {req['age_s']:.1f}s, "
                 f"{req['waiters']} waiter"
                 f"{'s' if req['waiters'] != 1 else ''})")
    flight_info = response.get("flight")
    if flight_info:
        log.info(f"  flight recorder "
                 f"{'armed' if flight_info['armed'] else 'disarmed'}: "
                 f"{flight_info['dumps']} dumps -> "
                 f"{flight_info['dir']}")
    store = response["store"]
    log.info(f"  store {store['root']}: {store['entries']} artifacts, "
             f"{store['bytes'] / 1e6:.1f} MB "
             f"of {store['budget_bytes'] / 1e6:.0f} MB")
    counters = response["metrics"]["counters"]
    for name in sorted(counters):
        if name.startswith(("service.", "store.")):
            log.info(f"  {name:<32} {counters[name]:>10.0f}")
    return 0 if response.get("ok") else 1


def _service_submit(args) -> int:
    response = _service_client(args).submit_flow(
        benchmark=args.benchmark, selector=args.selector,
        seed=args.seed, with_scan=args.with_scan,
        dft_strategy=args.dft_strategy, freq_mhz=args.freq_mhz,
        workers=args.workers,
        place_region_parallel=args.place_region_parallel,
        save_report=args.save_report)
    if args.json:
        print(json.dumps(response, indent=2, sort_keys=True))
        return 0 if response.get("ok") else 1
    if not response.get("ok"):
        log.error(f"flow request failed: {response.get('error')}")
        return 1
    source = "artifact replay" if response["cached"] else "cold compute"
    log.info(f"{response['benchmark']} — selector "
             f"{response['selector']} ({source}, "
             f"{response['serve_s']:.3f}s served"
             f"{', deduped' if response.get('deduped') else ''})")
    for key, value in response["row"].items():
        log.info(f"  {key:<18} {value:>12.3f}" if isinstance(value, float)
                 else f"  {key:<18} {value:>12}")
    if response.get("artifacts"):
        for kind, path in response["artifacts"].items():
            log.info(f"  artifact[{kind}] {path}")
    return 0


def _cmd_service(args) -> int:
    handler = {"start": _service_start, "stop": _service_stop,
               "status": _service_status, "submit": _service_submit}
    return handler[args.service_command](args)


def _trace_report(args) -> int:
    from repro.obs.analyze import report_file
    print(report_file(args.file, top=args.top, by=args.by))
    return 0


def _trace_diff(args) -> int:
    from repro.obs.analyze import diff_files
    print(diff_files(args.a, args.b, top=args.top))
    return 0


def _trace_gate(args) -> int:
    from repro.obs import trend
    latest = trend.latest_legs(trend.load_trend(args.trend))
    if args.update_budgets:
        legs = args.leg or None
        payload = trend.write_budgets(args.budgets, latest, legs=legs,
                                      tolerance=args.tolerance,
                                      headroom=args.headroom)
        log.info(f"wrote {len(payload['budgets'])} leg budgets to "
                 f"{args.budgets} (headroom x{args.headroom:g}, "
                 f"tolerance {args.tolerance:.0%})")
        return 0
    budgets = trend.load_budgets(args.budgets)
    failures, lines = trend.check_gate(latest, budgets)
    for line in lines:
        log.info(line)
    if failures:
        for failure in failures:
            log.error(f"perf gate: {failure}")
        return 1
    log.info(f"perf gate ok: {len(budgets['budgets'])} legs within "
             f"budget")
    return 0


def _cmd_trace(args) -> int:
    handler = {"report": _trace_report, "diff": _trace_diff,
               "gate": _trace_gate}
    try:
        return handler[args.trace_command](args)
    except (OSError, ValueError) as exc:
        log.error(str(exc))
        return 2


def _cmd_export(args) -> int:
    from repro.netlist.verilog import write_verilog
    spec = get_benchmark(args.benchmark)
    netlist = spec.factory(spec.tech().libraries, spec.seeds(args.seed))
    write_verilog(netlist, args.out)
    stats = netlist.stats()
    log.info(f"wrote {args.out}: {stats['instances']} instances, "
             f"{stats['nets']} nets")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="GNN-MLS reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    listing = sub.add_parser("list", help="list benchmarks and selectors")

    flow = sub.add_parser("flow", help="run one flow, print its row")
    _add_common(flow)
    flow.add_argument("--verilog", metavar="FILE", default=None,
                      help="import FILE (structural Verilog, e.g. from "
                           "'repro export') as the design instead of "
                           "generating the benchmark netlist; tech and "
                           "target frequency still come from "
                           "--benchmark")

    table = sub.add_parser("table", help="regenerate a paper table")
    table.add_argument("--table", type=int, required=True,
                       choices=(1, 3, 4, 5, 6))
    table.add_argument("--seed", type=int,
                       default=DEFAULT_EXPERIMENT_SEED)
    _add_parallel(table)

    timing = sub.add_parser("timing", help="signoff-style timing report")
    _add_common(timing)
    timing.add_argument("--paths", type=int, default=3)

    congestion = sub.add_parser("congestion",
                                help="routing utilization + heatmap")
    _add_common(congestion)

    export = sub.add_parser("export", help="write structural Verilog")
    _add_common(export)
    export.add_argument("--out", required=True)

    service = sub.add_parser(
        "service", help="flow-as-a-service daemon (start|stop|status|"
                        "submit)")
    ssub = service.add_subparsers(dest="service_command", required=True)

    def _add_socket(parser):
        parser.add_argument("--socket", default=DEFAULT_SOCKET,
                            help=f"daemon unix socket "
                                 f"(default: {DEFAULT_SOCKET})")

    s_start = ssub.add_parser("start", help="run the daemon")
    _add_socket(s_start)
    s_start.add_argument("--store", default=None,
                         help=f"artifact store root "
                              f"(default: {DEFAULT_STORE})")
    s_start.add_argument("--budget-mb", type=_positive_int, default=2048,
                         help="store size budget in MB (LRU eviction)")
    s_start.add_argument("--flow-workers", type=_positive_int, default=1,
                         help="concurrent flow executions")
    s_start.add_argument("--detach", action="store_true",
                         help="fork into the background and return "
                              "once the socket answers")

    s_stop = ssub.add_parser("stop", help="shut the daemon down")
    _add_socket(s_stop)

    s_status = ssub.add_parser("status",
                               help="queue/store/metrics snapshot")
    _add_socket(s_status)
    s_status.add_argument("--json", action="store_true",
                          help="print the raw status JSON")

    s_submit = ssub.add_parser("submit", help="submit one flow request")
    _add_socket(s_submit)
    s_submit.add_argument("--benchmark", default="maeri16_hetero",
                          choices=sorted(BENCHMARKS))
    s_submit.add_argument("--selector", default="gnn",
                          choices=list(SELECTORS))
    s_submit.add_argument("--seed", type=int,
                          default=DEFAULT_EXPERIMENT_SEED)
    s_submit.add_argument("--with-scan", action="store_true")
    s_submit.add_argument("--dft-strategy", default=None,
                          choices=("net-based", "wire-based"))
    s_submit.add_argument("--freq-mhz", type=float, default=None,
                          help="override the benchmark target clock")
    s_submit.add_argument("--workers", type=_positive_int, default=1)
    s_submit.add_argument("--place-region-parallel",
                          action="store_true")
    s_submit.add_argument("--save-report", action="store_true",
                          help="also report the on-disk FlowReport "
                               "artifact paths")
    s_submit.add_argument("--timeout", type=float, default=900.0,
                          help="client wait budget in seconds")
    s_submit.add_argument("--json", action="store_true",
                          help="print the raw response JSON")

    s_status.add_argument("--metrics", action="store_true",
                          help="print the daemon metrics as Prometheus "
                               "text exposition and exit")

    tracecmd = sub.add_parser(
        "trace", help="analyze trace files (report|diff|gate)")
    tsub = tracecmd.add_subparsers(dest="trace_command", required=True)

    t_report = tsub.add_parser(
        "report", help="self/total time per span path, critical path")
    t_report.add_argument("file", help="span trace (JSONL)")
    t_report.add_argument("--top", type=_positive_int, default=20,
                          help="hot paths to show (default: 20)")
    t_report.add_argument("--by", default="self",
                          choices=("self", "total"),
                          help="hot-path sort key (default: self)")

    t_diff = tsub.add_parser(
        "diff", help="localize where wall-clock moved between two runs")
    t_diff.add_argument("a", help="baseline span trace (JSONL)")
    t_diff.add_argument("b", help="comparison span trace (JSONL)")
    t_diff.add_argument("--top", type=_positive_int, default=20,
                        help="largest self-time moves to show")

    t_gate = tsub.add_parser(
        "gate", help="fail when a tracked perf leg exceeds its budget")
    t_gate.add_argument("--trend",
                        default="benchmarks/results/trend.jsonl",
                        help="perf-trend ledger (JSONL, appended by "
                             "the benches)")
    t_gate.add_argument("--budgets", default="benchmarks/budgets.json",
                        help="per-leg budget file")
    t_gate.add_argument("--update-budgets", action="store_true",
                        help="re-baseline: write budgets from the "
                             "newest ledger samples instead of "
                             "checking")
    t_gate.add_argument("--leg", action="append", metavar="NAME",
                        help="with --update-budgets: budget only this "
                             "leg (repeatable; default: every sampled "
                             "leg)")
    t_gate.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed fraction over budget "
                             "(default: 0.15)")
    t_gate.add_argument("--headroom", type=float, default=2.0,
                        help="with --update-budgets: budget = newest "
                             "sample x headroom (default: 2.0)")

    for command in (listing, flow, table, timing, congestion, export,
                    s_start, s_stop, s_submit, t_report, t_diff,
                    t_gate):
        _add_obs(command)
    _add_obs(s_status, metrics_flag=False)

    args = parser.parse_args(argv)
    set_log_level(args.log_level)
    handler = {
        "list": _cmd_list,
        "flow": _cmd_flow,
        "table": _cmd_table,
        "timing": _cmd_timing,
        "congestion": _cmd_congestion,
        "export": _cmd_export,
        "service": _cmd_service,
        "trace": _cmd_trace,
    }[args.command]
    # Long-lived daemons stream their trace through a rotating sink
    # (bounded file size, bounded memory); one-shot commands buffer
    # unless --trace-max-mb asks for rotation explicitly.
    streaming = args.trace and (
        args.trace_max_mb is not None
        or (args.command == "service"
            and args.service_command == "start"))
    if (args.command == "service" and args.service_command == "start"
            and args.detach):
        # The forked daemon owns the trace file (_service_start
        # forwards the flags and clears args.trace); the parent must
        # not open, truncate, or write it.
        streaming = False
    elif args.trace:
        trace.enable()
        if streaming:
            from repro.obs.tracer import RotatingTraceSink
            max_mb = args.trace_max_mb or 64
            trace.attach_sink(RotatingTraceSink(
                args.trace, max_bytes=max_mb << 20))
    code = handler(args)
    if args.trace:
        if streaming:
            sink = trace.detach_sink()
            trace.disable()
            trace.reset()
            log.info(f"streamed {sink.records_written} spans to "
                     f"{args.trace} ({sink.rotations} rotations; "
                     f"no chrome sibling in rotating mode)")
        else:
            spans = trace.write_jsonl(args.trace)
            chrome = chrome_trace_path(args.trace)
            trace.write_chrome(chrome)
            trace.disable()
            trace.reset()
            log.info(f"wrote {spans} spans to {args.trace} "
                     f"(chrome: {chrome})")
    if getattr(args, "metrics", None) and isinstance(args.metrics, str):
        metrics.write_json(args.metrics)
        log.info(f"wrote metrics to {args.metrics}")
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
