"""Stuck-at fault universe with structural collapsing.

Faults live on pins: every instance pin and port pin carries SA0 and
SA1.  The *total* count is the uncollapsed universe (what a tool's
fault report prints, cf. Table III); simulation runs on a collapsed
set using the classic equivalence rules for single-input cells
(a BUF/INV input fault is equivalent to the corresponding output
fault), which shrinks the buffer-heavy designs meaningfully.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import DFTError
from repro.netlist.netlist import Netlist

SA0 = 0
SA1 = 1


@dataclass(frozen=True)
class Fault:
    """One stuck-at fault.

    ``site`` is a pin full-name (``inst/PIN`` or ``port:NAME``);
    ``stuck`` is SA0/SA1.  ``kind`` distinguishes where injection
    happens: "out" faults poison the whole net, "in" faults poison one
    gate input, "boundary" faults sit on macro inputs / output ports
    and are judged by net visibility rather than cone simulation.
    """

    site: str
    stuck: int
    kind: str

    def __post_init__(self) -> None:
        if self.stuck not in (SA0, SA1):
            raise DFTError(f"stuck value must be 0/1, got {self.stuck}")
        if self.kind not in ("in", "out", "boundary"):
            raise DFTError(f"unknown fault kind {self.kind}")


class FaultUniverse:
    """Total + collapsed fault sets for one netlist."""

    def __init__(self, total: int, collapsed: list[Fault]):
        self.total = total
        self.collapsed = collapsed

    def __len__(self) -> int:
        return len(self.collapsed)

    def __iter__(self) -> Iterator[Fault]:
        return iter(self.collapsed)

    @property
    def collapse_ratio(self) -> float:
        if self.total == 0:
            return 1.0
        return len(self.collapsed) / self.total


def build_fault_universe(netlist: Netlist) -> FaultUniverse:
    """Enumerate and collapse the stuck-at universe of *netlist*.

    Collapsing rules (equivalence only, no dominance):
    * single-input cells (INV/BUF/LVLSHIFT/CLKBUF): drop input faults,
      keep output faults (input SA-v is equivalent to an output fault);
    * clock and scan-enable pins carry no functional faults (they are
      exercised by the scan protocol itself).
    """
    total = 0
    collapsed: list[Fault] = []
    for inst in netlist.instances.values():
        single_input = (not inst.is_sequential and not inst.is_macro
                        and inst.cell.num_inputs == 1)
        for pin in inst.pins.values():
            if pin.name == inst.cell.clock_pin or pin.name == "SE":
                continue
            total += 2
            if pin.direction == "out":
                kind = "out"
            elif inst.is_macro or inst.is_sequential:
                # Macro data pins and scan-flop D/SI pins sit at
                # capture points: judged by net visibility.
                kind = "boundary"
            else:
                kind = "in"
            if kind == "in" and single_input:
                continue        # equivalent to the output fault
            for stuck in (SA0, SA1):
                collapsed.append(Fault(pin.full_name, stuck, kind))
    for port in netlist.ports.values():
        if port.pin.net is not None and port.pin.net.is_clock:
            continue
        total += 2
        kind = "boundary" if port.direction == "out" else "out"
        for stuck in (SA0, SA1):
            collapsed.append(Fault(port.pin.full_name, stuck, kind))
    return FaultUniverse(total=total, collapsed=collapsed)
