"""SCOAP testability analysis (combinational, scan view).

Controllabilities (CC0/CC1) propagate forward from controllable
sources; observability (CO) propagates backward from observation
points.  Per-cell transfer functions are derived *generically* from
the cell's logic function by truth-table enumeration — any cell the
library grows later is covered automatically.

Used for testability reporting and as the coverage estimator for
designs too large to fault-simulate exactly (the estimator is
calibrated against exact simulation on small designs in the tests).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import math

import numpy as np

from repro.errors import DFTError
from repro.netlist.cell import Instance
from repro.netlist.netlist import Netlist

_INF = float("inf")
_ONE = np.uint64(1)


@dataclass
class ScoapResult:
    """Per-net SCOAP numbers."""

    cc0: dict[str, float]
    cc1: dict[str, float]
    co: dict[str, float]

    def testability(self, net_name: str) -> float:
        """Combined difficulty score of a net (lower = easier)."""
        return (min(self.cc0.get(net_name, _INF),
                    self.cc1.get(net_name, _INF))
                + self.co.get(net_name, _INF))

    def hard_nets(self, threshold: float = 50.0) -> list[str]:
        """Nets whose testability score exceeds *threshold*."""
        return sorted(n for n in self.co
                      if self.testability(n) > threshold)


def _truth_table(inst: Instance) -> list[tuple[tuple[int, ...], int]]:
    """Enumerate (inputs, output) rows of a combinational cell."""
    k = inst.cell.num_inputs
    rows = []
    for bits in itertools.product((0, 1), repeat=k):
        words = [np.uint64(0xFFFFFFFFFFFFFFFF) if b else np.uint64(0)
                 for b in bits]
        out = int(inst.cell.evaluate(*words) & _ONE)
        rows.append((bits, out))
    return rows


def compute_scoap(netlist: Netlist,
                  cut_nets: set[str] | None = None) -> ScoapResult:
    """SCOAP over the scan view of *netlist*.

    ``cut_nets`` (MLS opens) become uncontrollable past the cut and
    unobservable through it, mirroring the fault simulator's model.
    """
    cut = set(cut_nets or ())
    cc0: dict[str, float] = {}
    cc1: dict[str, float] = {}
    co: dict[str, float] = {}

    # Sources: ports, sequential outputs.
    for port in netlist.ports.values():
        net = port.pin.net
        if net is not None and port.direction == "in" and not net.is_clock:
            cc0[net.name] = cc1[net.name] = 1.0
    for inst in netlist.sequential_instances():
        net = inst.output_pin.net
        if net is not None:
            cc0[net.name] = cc1[net.name] = 1.0

    order = netlist.topological_order()
    tables: dict[str, list] = {}
    for inst in order:
        out_net = inst.output_pin.net
        if out_net is None:
            continue
        in_nets = [p.net for p in inst.input_pins()]
        in_cc = []
        for n in in_nets:
            if n is None or n.name in cut:
                in_cc.append((_INF, _INF))
            else:
                in_cc.append((cc0.get(n.name, _INF), cc1.get(n.name, _INF)))
        table = tables.setdefault(inst.cell.name, _truth_table(inst))
        best = {0: _INF, 1: _INF}
        for bits, out in table:
            cost = 1.0
            for bit, (c0, c1) in zip(bits, in_cc):
                cost += c1 if bit else c0
            if cost < best[out]:
                best[out] = cost
        cc0[out_net.name] = min(cc0.get(out_net.name, _INF), best[0])
        cc1[out_net.name] = min(cc1.get(out_net.name, _INF), best[1])

    # Observation points.
    for port in netlist.ports.values():
        net = port.pin.net
        if net is not None and port.direction == "out":
            co[net.name] = 0.0
    for inst in netlist.sequential_instances():
        for pin in inst.input_pins():
            if pin.name == "SE":
                continue
            if pin.net is not None and pin.net.name not in cut:
                co[pin.net.name] = 0.0

    for inst in reversed(order):
        out_net = inst.output_pin.net
        if out_net is None or out_net.name in cut:
            continue
        out_co = co.get(out_net.name, _INF)
        table = tables.get(inst.cell.name)
        if table is None:
            continue
        in_nets = [p.net for p in inst.input_pins()]
        in_cc = []
        for n in in_nets:
            if n is None or n.name in cut:
                in_cc.append((_INF, _INF))
            else:
                in_cc.append((cc0.get(n.name, _INF), cc1.get(n.name, _INF)))
        for i, net in enumerate(in_nets):
            if net is None or net.name in cut:
                continue
            # Sensitization: cheapest side-input assignment where
            # toggling input i toggles the output.
            best = _INF
            by_rest: dict[tuple[int, ...], dict[int, int]] = {}
            for bits, out in table:
                rest = bits[:i] + bits[i + 1:]
                by_rest.setdefault(rest, {})[bits[i]] = out
            for rest, outcomes in by_rest.items():
                if len(outcomes) < 2 or outcomes[0] == outcomes[1]:
                    continue
                cost = 1.0
                rest_cc = in_cc[:i] + in_cc[i + 1:]
                for bit, (c0, c1) in zip(rest, rest_cc):
                    cost += c1 if bit else c0
                best = min(best, cost)
            cand = out_co + best
            if cand < co.get(net.name, _INF):
                co[net.name] = cand

    return ScoapResult(cc0=cc0, cc1=cc1, co=co)


def estimate_coverage_pct(netlist: Netlist, scoap: ScoapResult,
                          patterns: int = 192,
                          difficulty_scale: float = 9.0) -> float:
    """Random-pattern coverage estimate from SCOAP scores.

    Each net's detection probability per pattern is modeled as
    ``2**-(score/difficulty_scale)``; coverage is the mean detection
    probability over nets after *patterns* vectors.  The scale factor
    is calibrated against exact fault simulation in the test suite.
    """
    if patterns <= 0:
        raise DFTError("patterns must be positive")
    nets = [n for n in netlist.signal_nets()]
    if not nets:
        return 100.0
    detected = 0.0
    for net in nets:
        score = scoap.testability(net.name)
        if math.isinf(score):
            continue
        p = 2.0 ** (-score / difficulty_scale)
        detected += 1.0 - (1.0 - min(p, 1.0)) ** patterns
    return 100.0 * detected / len(nets)
