"""Exact three-valued (0/1/X) bit-parallel gate evaluation.

The fault simulator needs exact X-propagation at the MLS repair MUX:
with S pinned to test mode and B driven from scan, the output is known
even though the functional A input is an open (X).  A pessimistic
"known only if all inputs known" rule would erase the whole repair.

Signals are dual-rail: ``can0``/``can1`` masks per 64-pattern word
(both set = X).  Gates evaluate through their truth table:
``out_can1`` ORs, over rows producing 1, the AND of each input's
ability to take that row's value — exact for any single-output cell,
derived automatically from the cell's logic function.  The all-known
fast path (one native evaluate) keeps the common case cheap.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.tech.cells import CellType

_ALL = np.uint64(0xFFFF_FFFF_FFFF_FFFF)
_ONE = np.uint64(1)

#: cell name -> list of (input bits, output bit) truth rows.
_TABLE_CACHE: dict[str, list[tuple[tuple[int, ...], int]]] = {}


def truth_table(cell: CellType) -> list[tuple[tuple[int, ...], int]]:
    """Truth rows of *cell*, cached by cell name."""
    rows = _TABLE_CACHE.get(cell.name)
    if rows is None:
        rows = []
        for bits in itertools.product((0, 1), repeat=cell.num_inputs):
            words = [np.uint64(0) if b == 0 else _ALL for b in bits]
            out = int(cell.evaluate(*words) & _ONE)
            rows.append((bits, out))
        _TABLE_CACHE[cell.name] = rows
    return rows


def eval_gate(cell: CellType, ins_v: list[np.ndarray],
              ins_k: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    """Evaluate one gate over (value, known) input words.

    Returns (value, known) output words; the value in unknown
    positions is 0 by convention.
    """
    known_all = None
    for k in ins_k:
        known_all = k if known_all is None else (known_all & k)
    if known_all is None:
        size = 1
        return (np.zeros(size, dtype=np.uint64),
                np.zeros(size, dtype=np.uint64))
    if bool((known_all == _ALL).all()):
        value = cell.evaluate(*ins_v)
        return value, known_all

    # Dual-rail exact path.
    can1 = [v | ~k for v, k in zip(ins_v, ins_k)]
    can0 = [(~v) | (~k) for v, k in zip(ins_v, ins_k)]
    out1 = np.zeros_like(ins_v[0])
    out0 = np.zeros_like(ins_v[0])
    for bits, out in truth_table(cell):
        term = None
        for bit, c1, c0 in zip(bits, can1, can0):
            rail = c1 if bit else c0
            term = rail if term is None else (term & rail)
        if out:
            out1 |= term
        else:
            out0 |= term
    known = ~(out1 & out0)
    value = out1 & known
    return value, known
