"""Bit-parallel random-pattern stuck-at fault simulation.

Simulates the full-scan combinational view: controllable sources are
input ports, scan-flop Q pins and macro Q pins (memory BIST bypass);
observation points are output ports, flop D/SI pins and macro data
pins, plus any caller-supplied extra observe nets (the MLS DFT
strategies observe the driver side of each shared net).

Three-valued logic uses (value, known) word pairs with pessimistic
X-propagation: a gate output is known only when all its inputs are —
exact for the XOR-heavy arithmetic that dominates our benchmarks,
slightly pessimistic elsewhere.  ``cut_nets`` models the open
connections MLS creates during individual-die test: their sinks read
X in die-level test mode (Figure 3).

Detection is cone-local: each fault re-simulates only its downstream
cone, comparing at reachable observation points — the standard
single-fault propagation optimization that keeps simulator-scale
designs tractable in pure Python.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DFTError
from repro.netlist.cell import Instance
from repro.netlist.netlist import Netlist
from repro.dft.faults import Fault, FaultUniverse, SA1
from repro.dft.logic3 import eval_gate
from repro.parallel import ParallelConfig, snapshot_map

_ALL = np.uint64(0xFFFF_FFFF_FFFF_FFFF)


@dataclass
class FaultSimResult:
    """Coverage outcome."""

    total_faults: int          # uncollapsed universe size
    simulated_faults: int      # collapsed set actually simulated
    detected_collapsed: int
    patterns: int

    @property
    def coverage_pct(self) -> float:
        """Detected fraction of the simulated (collapsed) set, as %."""
        if self.simulated_faults == 0:
            return 100.0
        return 100.0 * self.detected_collapsed / self.simulated_faults

    @property
    def detected_total(self) -> int:
        """Detected count scaled back to the uncollapsed universe —
        what a tool's fault report prints next to 'total faults'."""
        return round(self.total_faults * self.coverage_pct / 100.0)

    def summary(self) -> dict[str, float]:
        return {
            "total_faults": self.total_faults,
            "detected": self.detected_total,
            "coverage_pct": self.coverage_pct,
            "patterns": self.patterns,
        }


class _ScanView:
    """Levelized combinational view with (value, known) words."""

    def __init__(self, netlist: Netlist, words: int,
                 rng: np.random.Generator,
                 cut_nets: set[str],
                 pinned_ports: dict[str, int],
                 extra_observe: set[str]):
        self.netlist = netlist
        self.words = words
        self.cut_nets = cut_nets
        self.order = netlist.topological_order()
        self.value: dict[str, np.ndarray] = {}
        self.known: dict[str, np.ndarray] = {}

        # Controllable sources get independent random words.
        for port in netlist.ports.values():
            net = port.pin.net
            if net is None or net.is_clock or port.direction != "in":
                continue
            if port.name in pinned_ports:
                word = _ALL if pinned_ports[port.name] else np.uint64(0)
                self.value[net.name] = np.full(words, word, dtype=np.uint64)
            else:
                self.value[net.name] = _rand_words(rng, words)
            self.known[net.name] = np.full(words, _ALL, dtype=np.uint64)
        for inst in netlist.sequential_instances():
            net = inst.output_pin.net
            if net is None:
                continue
            self.value[net.name] = _rand_words(rng, words)
            self.known[net.name] = np.full(words, _ALL, dtype=np.uint64)

        self.observe_nets = self._observation_nets(extra_observe)
        self._evaluate_all()

    # -- good simulation -------------------------------------------------------

    def _evaluate_all(self) -> None:
        zero = np.zeros(self.words, dtype=np.uint64)
        for inst in self.order:
            out_net = inst.output_pin.net
            if out_net is None:
                continue
            ins_v, ins_k = [], []
            for pin in inst.input_pins():
                v, k = self._pin_words(pin, zero)
                ins_v.append(v)
                ins_k.append(k)
            value, known = eval_gate(inst.cell, ins_v, ins_k)
            self.value[out_net.name] = value
            self.known[out_net.name] = known

    def _pin_words(self, pin, zero):
        """(value, known) seen AT a sink pin, honouring cut nets."""
        net = pin.net
        if net is None:
            return zero, zero
        if net.name in self.cut_nets:
            return zero, zero          # open connection: X
        v = self.value.get(net.name)
        k = self.known.get(net.name)
        if v is None:
            return zero, zero          # undriven in scan view
        return v, k

    def _observation_nets(self, extra: set[str]) -> list[str]:
        obs: set[str] = set(extra)
        for port in self.netlist.ports.values():
            if port.direction == "out" and port.pin.net is not None:
                obs.add(port.pin.net.name)
        for inst in self.netlist.instances.values():
            if not inst.is_sequential:
                continue
            for pin in inst.input_pins():
                if pin.name == "SE":
                    continue
                if pin.net is not None and pin.net.name not in self.cut_nets:
                    obs.add(pin.net.name)
        return sorted(obs)

    # -- cone machinery ---------------------------------------------------------

    def downstream_cone(self, net_name: str) -> list[Instance]:
        """Combinational instances reachable from *net_name*, in
        topological order (cut nets block propagation)."""
        net = self.netlist.nets.get(net_name)
        if net is None:
            raise DFTError(f"unknown net {net_name}")
        hit: set[str] = set()
        frontier = [net]
        while frontier:
            cur = frontier.pop()
            if cur.name in self.cut_nets:
                continue
            for sink in cur.sinks:
                owner = sink.owner
                if owner is None or owner.is_sequential:
                    continue
                if sink.name == "SE" or sink is owner.clock_pin:
                    continue
                if owner.name in hit:
                    continue
                hit.add(owner.name)
                out = owner.output_pin.net
                if out is not None:
                    frontier.append(out)
        return [inst for inst in self.order if inst.name in hit]


def _rand_words(rng: np.random.Generator, words: int) -> np.ndarray:
    return rng.integers(0, 2 ** 63, size=words, dtype=np.uint64) \
        ^ (rng.integers(0, 2, size=words, dtype=np.uint64) << np.uint64(63))


def _detect_chunk(state, indices: list[int]) -> list[bool]:
    """Worker: detect one chunk of faults against the snapshot view.

    Per-fault detection only reads the good-machine view (faulty
    values live in fault-local dicts), so any fault partition merges
    back to exactly the serial detection set.
    """
    netlist, view, faults = state
    zero = np.zeros(view.words, dtype=np.uint64)
    obs_set = set(view.observe_nets)
    return [_detect_one(netlist, view, faults[i], obs_set, zero)
            for i in indices]


def simulate_faults(netlist: Netlist, universe: FaultUniverse,
                    rng: np.random.Generator,
                    patterns: int = 192,
                    cut_nets: set[str] | None = None,
                    pinned_ports: dict[str, int] | None = None,
                    extra_observe: set[str] | None = None,
                    max_faults: int | None = None,
                    parallel: ParallelConfig | None = None
                    ) -> FaultSimResult:
    """Simulate the collapsed universe under *patterns* random vectors.

    ``max_faults`` caps the simulated set by deterministic stride
    sampling (fault-sampled coverage, the standard practice for large
    designs); reported coverage then extrapolates from the sample.

    With a multi-worker *parallel* config the fault list is chunked
    over a process pool.  The scan view (and hence every *rng* draw)
    is still built in this process, so the caller's generator advances
    exactly as in a serial run and results are bit-identical.
    """
    if patterns < 64 or patterns % 64:
        raise DFTError("patterns must be a positive multiple of 64")
    words = patterns // 64
    view = _ScanView(netlist, words, rng,
                     cut_nets=set(cut_nets or ()),
                     pinned_ports=dict(pinned_ports or {}),
                     extra_observe=set(extra_observe or ()))

    faults = list(universe)
    if max_faults is not None and len(faults) > max_faults:
        stride = -(-len(faults) // max_faults)     # ceil division
        faults = faults[::stride]

    if parallel is not None and parallel.should_parallelize(len(faults)):
        hits = snapshot_map(_detect_chunk, range(len(faults)),
                            snapshot=(netlist, view, faults),
                            config=parallel)
        detected = sum(1 for hit in hits if hit)
    else:
        detected = 0
        zero = np.zeros(words, dtype=np.uint64)
        obs_set = set(view.observe_nets)
        for fault in faults:
            if _detect_one(netlist, view, fault, obs_set, zero):
                detected += 1
    return FaultSimResult(
        total_faults=universe.total,
        simulated_faults=len(faults),
        detected_collapsed=detected,
        patterns=patterns,
    )


def _fault_site(netlist: Netlist, site: str):
    """Resolve a pin full-name to (net, owner_instance, pin_name)."""
    if site.startswith("port:"):
        port = netlist.port(site[5:])
        return port.pin.net, None, port.name
    inst_name, pin_name = site.rsplit("/", 1)
    inst = netlist.instance(inst_name)
    return inst.pins[pin_name].net, inst, pin_name


def _detect_one(netlist: Netlist, view: _ScanView, fault: Fault,
                obs_set: set[str], zero: np.ndarray) -> bool:
    net, inst, pin_name = _fault_site(netlist, fault.site)
    if net is None:
        return False
    stuck_word = _ALL if fault.stuck == SA1 else np.uint64(0)

    if fault.kind == "boundary":
        # Macro-input / output-port fault: detected iff the net is
        # observable there (it is an obs point by construction) and a
        # known good value differs from the stuck value.
        if net.name in view.cut_nets:
            return False
        good_v = view.value.get(net.name)
        good_k = view.known.get(net.name)
        if good_v is None:
            return False
        diff = (good_v ^ np.full_like(good_v, stuck_word)) & good_k
        return bool(diff.any())

    # Faulty value injected on the net (output fault) or privately at
    # one gate input (input fault), then cone-resimulated.
    faulty_v = dict()
    faulty_k = dict()

    def read(pin, values, knowns):
        n = pin.net
        if n is None or n.name in view.cut_nets:
            return zero, zero
        v = values.get(n.name, view.value.get(n.name))
        k = knowns.get(n.name, view.known.get(n.name))
        if v is None:
            return zero, zero
        return v, k

    if fault.kind == "out":
        faulty_v[net.name] = np.full(view.words, stuck_word, dtype=np.uint64)
        faulty_k[net.name] = np.full(view.words, _ALL, dtype=np.uint64)
        cone = view.downstream_cone(net.name)
        dirty = {net.name}
    else:
        # Input fault: re-evaluate the owning gate with the pin forced.
        assert inst is not None
        out_net = inst.output_pin.net
        if out_net is None or inst.is_sequential:
            return False
        ins_v, ins_k = [], []
        for pin in inst.input_pins():
            v, k = read(pin, faulty_v, faulty_k)
            if pin.name == pin_name:
                v = np.full(view.words, stuck_word, dtype=np.uint64)
                k = np.full(view.words, _ALL, dtype=np.uint64)
            ins_v.append(v)
            ins_k.append(k)
        value, known = eval_gate(inst.cell, ins_v, ins_k)
        faulty_v[out_net.name] = value
        faulty_k[out_net.name] = known
        cone = view.downstream_cone(out_net.name)
        dirty = {out_net.name}

    for gate in cone:
        if not any(p.net is not None and p.net.name in dirty
                   for p in gate.input_pins()):
            continue
        out_net2 = gate.output_pin.net
        if out_net2 is None:
            continue
        ins_v, ins_k = [], []
        for pin in gate.input_pins():
            v, k = read(pin, faulty_v, faulty_k)
            ins_v.append(v)
            ins_k.append(k)
        new_v, known = eval_gate(gate.cell, ins_v, ins_k)
        old_v = view.value.get(out_net2.name)
        old_k = view.known.get(out_net2.name)
        if old_v is not None and np.array_equal(new_v, old_v) \
                and np.array_equal(known, old_k):
            continue
        faulty_v[out_net2.name] = new_v
        faulty_k[out_net2.name] = known
        dirty.add(out_net2.name)

    for net_name in dirty:
        if net_name not in obs_set:
            continue
        good_v = view.value.get(net_name)
        good_k = view.known.get(net_name)
        if good_v is None:
            continue
        both_known = good_k & faulty_k[net_name]
        diff = (good_v ^ faulty_v[net_name]) & both_known
        if diff.any():
            return True
    return False
