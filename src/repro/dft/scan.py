"""Full-scan insertion and chain stitching.

Every plain DFF swaps to its scannable variant (SDFF); chains are
stitched in placement order (row-major snake per tier, the standard
wirelength-aware ordering) from a ``scan_in`` port through SI pins to
a ``scan_out`` port, with a shared ``scan_enable``.  Macros are not
scannable; their data pins stay cone boundaries, as in real designs
with memory BIST.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.design import Design
from repro.errors import DFTError
from repro.netlist.cell import Instance

#: DFF -> scan-equivalent mapping.
_SCAN_EQUIVALENT = {"DFF": "SDFF"}


@dataclass
class ScanChain:
    """One stitched chain (we build a single chain per design)."""

    elements: list[str] = field(default_factory=list)    # instance names
    scan_in_port: str = "scan_in"
    scan_out_port: str = "scan_out"
    scan_enable_port: str = "scan_enable"

    @property
    def length(self) -> int:
        return len(self.elements)


def insert_scan(design: Design) -> ScanChain:
    """Swap flops to scan flops and stitch one chain (in place).

    Must run after placement (stitch order is placement-driven) and
    before routing, so the scan nets get routed with everything else.
    Idempotent: re-running on a scanned design raises.
    """
    netlist = design.netlist
    if "scan_enable" in netlist.ports:
        raise DFTError(f"design {netlist.name} already has scan inserted")
    if design.routing is not None:
        raise DFTError("insert scan before routing, not after")
    placement = design.require_placement()
    tiers = design.require_tiers()

    flops: list[Instance] = []
    for inst in netlist.sequential_instances():
        if inst.is_macro:
            continue
        scan_name = _SCAN_EQUIVALENT.get(inst.cell.name)
        if scan_name is not None:
            region = inst.attrs.get("region", "logic")
            lib = design.tech.libraries[region]
            netlist.swap_cell(inst, lib.get(scan_name))
        elif not inst.cell.is_scannable:
            continue
        flops.append(inst)
    if not flops:
        raise DFTError("no scannable flops found")

    # Placement-ordered snake: sort by (tier, row, serpentine x).
    def key(inst: Instance):
        loc = placement.of_instance(inst.name)
        row = int(loc.y)
        x = loc.x if row % 2 == 0 else -loc.x
        return (loc.tier, row, x, inst.name)

    flops.sort(key=key)

    se_port = netlist.add_port("scan_enable", "in", false_path=True)
    se_net = netlist.add_net("scan_enable_net")
    se_net.attach(se_port.pin)
    si_port = netlist.add_port("scan_in", "in", false_path=True)
    prev_net = netlist.add_net("scan_in_net")
    prev_net.attach(si_port.pin)

    for inst in flops:
        si = inst.pin("SI")
        se = inst.pin("SE")
        # Clear placeholder hookups left by the builder, if any.
        if si.net is not None:
            si.net.detach(si)
        if se.net is not None:
            se.net.detach(se)
        prev_net.attach(si)
        se_net.attach(se)
        prev_net = inst.output_pin.net
        if prev_net is None:
            raise DFTError(f"scan flop {inst.name} has a dangling Q")

    so_port = netlist.add_port("scan_out", "out", false_path=True)
    prev_net.attach(so_port.pin)

    chain = ScanChain(elements=[f.name for f in flops])
    design.notes["scan_chain"] = chain
    # New ports need placement/tier bookkeeping.
    fp = design.require_floorplan()
    for port_name, frac in (("scan_enable", 0.1), ("scan_in", 0.2),
                            ("scan_out", 0.8)):
        tiers.set_port(port_name, 0)
        placement.set_port(port_name, fp.width * frac, 0.0)
    return chain
