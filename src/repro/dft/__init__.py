"""Design-for-Test: scan, testability analysis, fault simulation,
and the paper's two MLS DFT strategies.

The chain of capabilities mirrors a production test flow at simulator
scale: full-scan insertion (DFF -> SDFF swap + placement-ordered chain
stitching), SCOAP controllability/observability, a collapsed stuck-at
fault universe, 64-way bit-parallel random-pattern fault simulation on
the scan view, and the Figure 6 strategies — net-based (MUX) and
wire-based (scan-FF) repair of the open connections MLS creates in
hybrid-bonded dies (Table III / Table VI).
"""

from repro.dft.scan import ScanChain, insert_scan
from repro.dft.scoap import ScoapResult, compute_scoap
from repro.dft.faults import Fault, FaultUniverse, build_fault_universe
from repro.dft.fault_sim import FaultSimResult, simulate_faults
from repro.dft.logic3 import eval_gate, truth_table
from repro.dft.mls_dft import (
    MLSDftResult,
    NET_BASED,
    WIRE_BASED,
    apply_mls_dft,
    apply_net_based_dft,
    apply_wire_based_dft,
    die_test_fault_sim,
    untestable_fault_fraction,
)

__all__ = [
    "ScanChain",
    "insert_scan",
    "ScoapResult",
    "compute_scoap",
    "Fault",
    "FaultUniverse",
    "build_fault_universe",
    "FaultSimResult",
    "simulate_faults",
    "eval_gate",
    "truth_table",
    "MLSDftResult",
    "NET_BASED",
    "WIRE_BASED",
    "apply_mls_dft",
    "apply_net_based_dft",
    "apply_wire_based_dft",
    "die_test_fault_sim",
    "untestable_fault_fraction",
]
