"""The paper's two DFT strategies for MLS-enabled hybrid-bonded designs.

During individual-die test, every MLS net is an *open*: its shared
trunk leaves the die through an F2F pad and never comes back
(Figure 3).  Downstream logic becomes uncontrollable, upstream logic
unobservable.  The repairs (Figure 6):

* **net-based** — a MUX at the re-entry point switches the downstream
  cone between the functional (open) path and a test stimulus; the
  outgoing signal is observed through the scan-chain redirect.  All
  crossings share the test-stimulus distribution, so their patterns
  are correlated — the mechanical reason this detects slightly fewer
  faults than the wire-based scheme.
* **wire-based** — additionally parks a scan flip-flop at the
  crossing: its D observes the outgoing signal (registered), its Q
  supplies an *independent* per-crossing stimulus through the MUX.
  More added logic (more total faults), better coverage, slightly
  worse WNS from the extra load — Table III's trade-off.

Both insert post-routing and ECO-reroute the touched nets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.design import Design
from repro.errors import DFTError
from repro.netlist.net import Net
from repro.parallel import ParallelConfig
from repro.route.router import GlobalRouter, RoutingResult
from repro.dft.faults import build_fault_universe
from repro.dft.fault_sim import FaultSimResult, simulate_faults

NET_BASED = "net-based"
WIRE_BASED = "wire-based"


@dataclass
class MLSDftResult:
    """Outcome of one DFT strategy evaluation (Table III row)."""

    strategy: str
    crossings: int
    cells_added: int
    total_faults: int
    detected_faults: int
    coverage_pct: float

    def summary(self) -> dict[str, float]:
        return {
            "strategy": self.strategy,
            "crossings": self.crossings,
            "cells_added": self.cells_added,
            "total_faults": self.total_faults,
            "detected_faults": self.detected_faults,
            "coverage_pct": self.coverage_pct,
        }


def _mls_nets(design: Design) -> list[Net]:
    routing = design.require_routing()
    applied = routing.mls_applied_nets()
    return [design.netlist.net(name) for name in sorted(applied)]


def _ensure_test_ports(design: Design) -> tuple[Net, Net]:
    """(test_mode net, test_stim net), creating ports on first use."""
    netlist = design.netlist
    placement = design.require_placement()
    tiers = design.require_tiers()
    fp = design.require_floorplan()
    nets = []
    for name, frac in (("test_mode", 0.4), ("test_stim", 0.6)):
        if name in netlist.ports:
            nets.append(netlist.port(name).pin.net)
            continue
        port = netlist.add_port(name, "in", false_path=True)
        net = netlist.add_net(f"{name}_net")
        net.attach(port.pin)
        tiers.set_port(name, 0)
        placement.set_port(name, fp.width * frac, 0.0)
        nets.append(net)
    return nets[0], nets[1]


def _insert_repair(design: Design, router: GlobalRouter,
                   result: RoutingResult, net: Net,
                   wire_based: bool, clock_name: str) -> int:
    """Insert the MUX (and FF) for one MLS net; returns cells added."""
    netlist = design.netlist
    placement = design.require_placement()
    tiers = design.require_tiers()
    fp = design.require_floorplan()
    test_mode, test_stim = _ensure_test_ports(design)
    driver_tier = tiers.of_pin(net.driver)
    region = "logic" if driver_tier == 0 else "memory"
    lib = design.tech.libraries[region]

    sinks = list(net.sinks)
    if not sinks:
        raise DFTError(f"MLS net {net.name} has no sinks to repair")
    cx = sum(placement.of_pin(s).x for s in sinks) / len(sinks)
    cy = sum(placement.of_pin(s).y for s in sinks) / len(sinks)
    cx, cy = fp.clamp(cx, cy)

    added = 0
    mux = netlist.add_instance(netlist.fresh_name(f"{net.name}_dftmux"),
                               lib.get("TGMUX"))
    mux.attrs["region"] = region
    mux.attrs["dft"] = "1"
    tiers.set_instance(mux.name, driver_tier)
    placement.set_instance(mux.name, cx, cy)
    added += 1

    # Move every sink behind the MUX.
    router.unroute_net(result, net)
    repaired = netlist.split_net_at_sinks(net, sinks)
    net.attach(mux.pin("A"))
    test_mode.attach(mux.pin("S"))
    repaired.attach(mux.output_pin)

    if wire_based:
        ff = netlist.add_instance(netlist.fresh_name(f"{net.name}_dftff"),
                                  lib.get("SDFF"))
        ff.attrs["region"] = region
        ff.attrs["dft"] = "1"
        tiers.set_instance(ff.name, driver_tier)
        placement.set_instance(ff.name, cx, cy)
        added += 1
        net.attach(ff.pin("D"))
        net.attach(ff.pin("SI"))       # chain stitching placeholder
        test_mode.attach(ff.pin("SE"))
        netlist.net(clock_name).attach(ff.clock_pin)
        q_net = netlist.add_net(netlist.fresh_name(f"{ff.name}_q"))
        q_net.attach(ff.output_pin)
        q_net.attach(mux.pin("B"))
        new_local = [repaired, q_net]
    else:
        test_stim.attach(mux.pin("B"))
        new_local = [repaired]

    # ECO routing: the trunk net keeps its MLS route; new local nets
    # and the test distribution get routed fresh.
    router.reroute_net(result, net, mls=net.name in design.mls_nets)
    for local in new_local:
        router.reroute_net(result, local, mls=False)
    return added, repaired.name


def apply_mls_dft(design: Design, router: GlobalRouter,
                  result: RoutingResult, strategy: str,
                  clock_name: str = "clk") -> tuple[int, int]:
    """Insert *strategy* repairs on every applied-MLS net.

    Returns (crossings repaired, cells added).  The shared test_mode /
    test_stim nets are re-routed once at the end.
    """
    if strategy not in (NET_BASED, WIRE_BASED):
        raise DFTError(f"unknown DFT strategy {strategy!r}")
    nets = _mls_nets(design)
    cells = 0
    repaired_names: list[str] = []
    for net in nets:
        added, repaired_name = _insert_repair(
            design, router, result, net,
            wire_based=(strategy == WIRE_BASED), clock_name=clock_name)
        cells += added
        repaired_names.append(repaired_name)
    # ECO buffering: the repair MUX now drives the whole original sink
    # set from the crossing point; restore drive like a post-route ECO
    # would.  The touched nets must be re-routed: release their stale
    # routes first, then route everything currently unrouted (the
    # rebuilt repaired nets plus the new repeater nets).
    from repro.opt.buffering import buffer_nets
    for name in repaired_names:
        router.unroute_net(result, design.netlist.net(name))
    buffer_nets(design, repaired_names)
    for net2 in design.netlist.signal_nets():
        if net2.name not in result.trees:
            router.reroute_net(result, net2, mls=False)
    # (Re-)route the shared test nets now that all sinks exist.
    for name in ("test_mode_net", "test_stim_net"):
        if name in design.netlist.nets:
            net = design.netlist.net(name)
            if net.sinks:
                router.unroute_net(result, net)
                router.reroute_net(result, net, mls=False)
    return len(nets), cells


def apply_net_based_dft(design: Design, router: GlobalRouter,
                        result: RoutingResult,
                        clock_name: str = "clk") -> tuple[int, int]:
    """Figure 6(a): MUX repair on every MLS net."""
    return apply_mls_dft(design, router, result, NET_BASED, clock_name)


def apply_wire_based_dft(design: Design, router: GlobalRouter,
                         result: RoutingResult,
                         clock_name: str = "clk") -> tuple[int, int]:
    """Figure 6(b): scan-FF + MUX repair on every MLS net."""
    return apply_mls_dft(design, router, result, WIRE_BASED, clock_name)


def die_test_fault_sim(design: Design, rng: np.random.Generator,
                       patterns: int = 192,
                       with_dft: bool = True,
                       max_faults: int | None = None,
                       parallel: ParallelConfig | None = None
                       ) -> FaultSimResult:
    """Fault-simulate the individual-die test of *design*.

    MLS nets are open (cut); with DFT inserted, test_mode pins to 1
    and the driver side of every MLS net is observed through the
    repair; without, the opens simply eat coverage (the Figure 3
    motivation).
    """
    netlist = design.netlist
    mls = {n.name for n in _mls_nets(design)}
    universe = build_fault_universe(netlist)
    pinned = {"test_mode": 1} if with_dft and "test_mode" in netlist.ports \
        else {}
    extra = mls if with_dft else set()
    return simulate_faults(netlist, universe, rng, patterns=patterns,
                           cut_nets=mls, pinned_ports=pinned,
                           extra_observe=extra, max_faults=max_faults,
                           parallel=parallel)


def untestable_fault_fraction(design: Design, rng: np.random.Generator,
                              patterns: int = 192,
                              parallel: ParallelConfig | None = None
                              ) -> float:
    """Coverage loss (percentage points) caused by MLS opens with no
    DFT, versus the same design with its MLS nets intact."""
    netlist = design.netlist
    universe = build_fault_universe(netlist)
    base = simulate_faults(netlist, universe, rng, patterns=patterns,
                           parallel=parallel)
    cut = die_test_fault_sim(design, rng, patterns=patterns, with_dft=False,
                             parallel=parallel)
    return base.coverage_pct - cut.coverage_pct
