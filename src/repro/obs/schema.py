"""Trace/metrics file-format validators.

Shared by ``tests/test_obs.py`` and the CI observability smoke job::

    PYTHONPATH=src python -m repro.obs.schema TRACE.jsonl \\
        TRACE.chrome.json METRICS.json

Each validator raises :class:`ValueError` with a pinpointed message on
the first malformed record and returns a small summary on success, so
both pytest assertions and the CLI entry point get real diagnostics.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: Keys every JSONL span record must carry.
SPAN_KEYS = frozenset(
    {"name", "id", "parent", "pid", "ts_us", "dur_us", "attrs"})

#: Keys every Chrome trace event must carry.
CHROME_KEYS = frozenset({"name", "cat", "ph", "ts", "dur", "pid", "tid",
                         "args"})

#: Top-level sections of a metrics dump.
METRICS_SECTIONS = ("counters", "gauges", "stats")

_STAT_FIELDS = frozenset({"count", "total", "min", "max", "mean"})


def _is_num(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_trace_jsonl(path: str | Path) -> dict:
    """Validate a JSONL span trace; returns {spans, roots, pids}.

    Checks per record: required keys, numeric non-negative timing,
    string ids.  Checks globally: ids unique, every non-null parent
    resolves to a recorded span id (worker merges must re-root
    correctly — a dangling parent means a broken merge).
    """
    ids: set[str] = set()
    parents: list[tuple[int, str]] = []
    pids: set[int] = set()
    roots = 0
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON: {exc}") \
                    from None
            if not isinstance(rec, dict):
                raise ValueError(f"{path}:{lineno}: record is not an object")
            missing = SPAN_KEYS - rec.keys()
            if missing:
                raise ValueError(
                    f"{path}:{lineno}: missing keys {sorted(missing)}")
            if not isinstance(rec["name"], str) or not rec["name"]:
                raise ValueError(f"{path}:{lineno}: bad span name")
            if not isinstance(rec["id"], str) or not rec["id"]:
                raise ValueError(f"{path}:{lineno}: bad span id")
            if rec["id"] in ids:
                raise ValueError(
                    f"{path}:{lineno}: duplicate span id {rec['id']!r}")
            ids.add(rec["id"])
            if rec["parent"] is None:
                roots += 1
            elif isinstance(rec["parent"], str):
                parents.append((lineno, rec["parent"]))
            else:
                raise ValueError(f"{path}:{lineno}: bad parent id")
            if not _is_num(rec["ts_us"]) or rec["ts_us"] < 0:
                raise ValueError(f"{path}:{lineno}: bad ts_us")
            if not _is_num(rec["dur_us"]) or rec["dur_us"] < 0:
                raise ValueError(f"{path}:{lineno}: bad dur_us")
            if not isinstance(rec["pid"], int):
                raise ValueError(f"{path}:{lineno}: bad pid")
            if not isinstance(rec["attrs"], dict):
                raise ValueError(f"{path}:{lineno}: attrs not an object")
            pids.add(rec["pid"])
    for lineno, parent in parents:
        if parent not in ids:
            raise ValueError(
                f"{path}:{lineno}: parent {parent!r} references no "
                f"recorded span (broken worker merge?)")
    return {"spans": len(ids), "roots": roots, "pids": len(pids)}


def validate_chrome_trace(path: str | Path) -> dict:
    """Validate a Chrome trace-event file; returns {events, pids}."""
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ValueError(f"{path}: no traceEvents section")
    events = payload["traceEvents"]
    if not isinstance(events, list):
        raise ValueError(f"{path}: traceEvents is not a list")
    pids: set[int] = set()
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"{path}: event {i} is not an object")
        missing = CHROME_KEYS - event.keys()
        if missing:
            raise ValueError(
                f"{path}: event {i} missing keys {sorted(missing)}")
        if event["ph"] != "X":
            raise ValueError(f"{path}: event {i} has phase "
                             f"{event['ph']!r}, expected complete 'X'")
        if not _is_num(event["ts"]) or event["ts"] < 0:
            raise ValueError(f"{path}: event {i} bad ts")
        if not _is_num(event["dur"]) or event["dur"] < 0:
            raise ValueError(f"{path}: event {i} bad dur")
        pids.add(event["pid"])
    return {"events": len(events), "pids": len(pids)}


def validate_metrics(path: str | Path) -> dict:
    """Validate a metrics dump; returns {counters, gauges, stats}."""
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: not a JSON object")
    for section in METRICS_SECTIONS:
        if section not in payload or not isinstance(payload[section], dict):
            raise ValueError(f"{path}: missing section {section!r}")
    for family in ("counters", "gauges"):
        for name, value in payload[family].items():
            if not _is_num(value):
                raise ValueError(
                    f"{path}: {family}[{name!r}] is not numeric")
    for name, stat in payload["stats"].items():
        if not isinstance(stat, dict) or _STAT_FIELDS - stat.keys():
            raise ValueError(f"{path}: stats[{name!r}] missing fields")
        for field in _STAT_FIELDS:
            if not _is_num(stat[field]):
                raise ValueError(
                    f"{path}: stats[{name!r}][{field}] is not numeric")
        if stat["count"] < 1 or stat["min"] > stat["max"]:
            raise ValueError(f"{path}: stats[{name!r}] is inconsistent")
    return {section: len(payload[section]) for section in METRICS_SECTIONS}


def main(argv: list[str] | None = None) -> int:
    """CLI entry: validate trace JSONL [chrome JSON [metrics JSON]]."""
    args = sys.argv[1:] if argv is None else argv
    if not args or len(args) > 3:
        print("usage: python -m repro.obs.schema TRACE.jsonl "
              "[TRACE.chrome.json [METRICS.json]]", file=sys.stderr)
        return 2
    validators = (validate_trace_jsonl, validate_chrome_trace,
                  validate_metrics)
    try:
        for path, validator in zip(args, validators):
            summary = validator(path)
            print(f"{path}: OK {summary}")
    except (OSError, ValueError) as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
