"""Trace/metrics/flight-dump file-format validators (schema v2).

Shared by the test suite and the CI observability smoke jobs::

    PYTHONPATH=src python -m repro.obs.schema TRACE.jsonl \\
        TRACE.chrome.json METRICS.json
    PYTHONPATH=src python -m repro.obs.schema --prom METRICS.prom
    PYTHONPATH=src python -m repro.obs.schema --flight FLIGHT.json

Each validator raises :class:`ValueError` with a pinpointed message on
the first malformed record and returns a small summary on success, so
both pytest assertions and the CLI entry point get real diagnostics.

Schema v2 (this revision) extends v1 with:

* a required ``histograms`` section in metrics dumps
  (fixed-log-bucket snapshots from :mod:`repro.obs.histogram`);
* flight-recorder dump files (``repro.flight/2``) holding span /
  sample / note ring events plus a metrics snapshot;
* a Prometheus text-exposition checker for the daemon's ``metrics``
  verb.
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path

#: Validator revision; bumped when any accepted format changes shape.
SCHEMA_VERSION = 2

#: Keys every JSONL span record must carry.
SPAN_KEYS = frozenset(
    {"name", "id", "parent", "pid", "ts_us", "dur_us", "attrs"})

#: Keys every Chrome trace event must carry.
CHROME_KEYS = frozenset({"name", "cat", "ph", "ts", "dur", "pid", "tid",
                         "args"})

#: Top-level sections of a metrics dump.
METRICS_SECTIONS = ("counters", "gauges", "stats", "histograms")

_STAT_FIELDS = frozenset({"count", "total", "min", "max", "mean"})

_HIST_FIELDS = frozenset({"count", "total", "min", "max", "buckets"})

#: Event types a flight-recorder ring may contain.
FLIGHT_EVENT_TYPES = frozenset({"span", "sample", "note"})


def _is_num(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_trace_jsonl(path: str | Path) -> dict:
    """Validate a JSONL span trace; returns {spans, roots, pids}.

    Checks per record: required keys, numeric non-negative timing,
    string ids.  Checks globally: ids unique, every non-null parent
    resolves to a recorded span id (worker merges must re-root
    correctly — a dangling parent means a broken merge).
    """
    ids: set[str] = set()
    parents: list[tuple[int, str]] = []
    pids: set[int] = set()
    roots = 0
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON: {exc}") \
                    from None
            if not isinstance(rec, dict):
                raise ValueError(f"{path}:{lineno}: record is not an object")
            missing = SPAN_KEYS - rec.keys()
            if missing:
                raise ValueError(
                    f"{path}:{lineno}: missing keys {sorted(missing)}")
            if not isinstance(rec["name"], str) or not rec["name"]:
                raise ValueError(f"{path}:{lineno}: bad span name")
            if not isinstance(rec["id"], str) or not rec["id"]:
                raise ValueError(f"{path}:{lineno}: bad span id")
            if rec["id"] in ids:
                raise ValueError(
                    f"{path}:{lineno}: duplicate span id {rec['id']!r}")
            ids.add(rec["id"])
            if rec["parent"] is None:
                roots += 1
            elif isinstance(rec["parent"], str):
                parents.append((lineno, rec["parent"]))
            else:
                raise ValueError(f"{path}:{lineno}: bad parent id")
            if not _is_num(rec["ts_us"]) or rec["ts_us"] < 0:
                raise ValueError(f"{path}:{lineno}: bad ts_us")
            if not _is_num(rec["dur_us"]) or rec["dur_us"] < 0:
                raise ValueError(f"{path}:{lineno}: bad dur_us")
            if not isinstance(rec["pid"], int):
                raise ValueError(f"{path}:{lineno}: bad pid")
            if not isinstance(rec["attrs"], dict):
                raise ValueError(f"{path}:{lineno}: attrs not an object")
            pids.add(rec["pid"])
    for lineno, parent in parents:
        if parent not in ids:
            raise ValueError(
                f"{path}:{lineno}: parent {parent!r} references no "
                f"recorded span (broken worker merge?)")
    return {"spans": len(ids), "roots": roots, "pids": len(pids)}


def validate_chrome_trace(path: str | Path) -> dict:
    """Validate a Chrome trace-event file; returns {events, pids}."""
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ValueError(f"{path}: no traceEvents section")
    events = payload["traceEvents"]
    if not isinstance(events, list):
        raise ValueError(f"{path}: traceEvents is not a list")
    pids: set[int] = set()
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"{path}: event {i} is not an object")
        missing = CHROME_KEYS - event.keys()
        if missing:
            raise ValueError(
                f"{path}: event {i} missing keys {sorted(missing)}")
        if event["ph"] != "X":
            raise ValueError(f"{path}: event {i} has phase "
                             f"{event['ph']!r}, expected complete 'X'")
        if not _is_num(event["ts"]) or event["ts"] < 0:
            raise ValueError(f"{path}: event {i} bad ts")
        if not _is_num(event["dur"]) or event["dur"] < 0:
            raise ValueError(f"{path}: event {i} bad dur")
        pids.add(event["pid"])
    return {"events": len(events), "pids": len(pids)}


def validate_histogram_snapshot(snap: dict, where: str) -> None:
    """Validate one fixed-log-bucket histogram snapshot dict."""
    if not isinstance(snap, dict) or _HIST_FIELDS - snap.keys():
        raise ValueError(f"{where}: missing histogram fields")
    for field in ("count", "total", "min", "max"):
        if not _is_num(snap[field]):
            raise ValueError(f"{where}[{field}] is not numeric")
    buckets = snap["buckets"]
    if not isinstance(buckets, dict):
        raise ValueError(f"{where}: buckets is not an object")
    total_count = 0
    last_bound = float("-inf")
    for label, count in buckets.items():
        if label != "+Inf":
            try:
                bound = float(label)
            except ValueError:
                raise ValueError(
                    f"{where}: bucket label {label!r} is not a "
                    f"number") from None
            if bound <= last_bound:
                raise ValueError(f"{where}: bucket labels not "
                                 f"strictly increasing at {label!r}")
            last_bound = bound
        if not isinstance(count, int) or count < 1:
            raise ValueError(
                f"{where}: bucket[{label!r}] count must be a positive "
                f"integer, got {count!r}")
        total_count += count
    if total_count != snap["count"]:
        raise ValueError(
            f"{where}: bucket counts sum to {total_count}, "
            f"count says {snap['count']}")
    if snap["count"] and snap["min"] > snap["max"]:
        raise ValueError(f"{where}: min > max")


def validate_metrics(path: str | Path) -> dict:
    """Validate a metrics dump; returns section sizes."""
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: not a JSON object")
    for section in METRICS_SECTIONS:
        if section not in payload or not isinstance(payload[section], dict):
            raise ValueError(f"{path}: missing section {section!r}")
    for family in ("counters", "gauges"):
        for name, value in payload[family].items():
            if not _is_num(value):
                raise ValueError(
                    f"{path}: {family}[{name!r}] is not numeric")
    for name, stat in payload["stats"].items():
        if not isinstance(stat, dict) or _STAT_FIELDS - stat.keys():
            raise ValueError(f"{path}: stats[{name!r}] missing fields")
        for field in _STAT_FIELDS:
            if not _is_num(stat[field]):
                raise ValueError(
                    f"{path}: stats[{name!r}][{field}] is not numeric")
        if stat["count"] < 1 or stat["min"] > stat["max"]:
            raise ValueError(f"{path}: stats[{name!r}] is inconsistent")
    for name, snap in payload["histograms"].items():
        validate_histogram_snapshot(snap, f"{path}: histograms[{name!r}]")
    return {section: len(payload[section]) for section in METRICS_SECTIONS}


def validate_flight_dump(path: str | Path) -> dict:
    """Validate a flight-recorder dump; returns {events, spans}."""
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: not a JSON object")
    if payload.get("schema") != "repro.flight/2":
        raise ValueError(f"{path}: unknown flight schema "
                         f"{payload.get('schema')!r}")
    for field in ("reason", "pid", "ts_us", "events", "metrics"):
        if field not in payload:
            raise ValueError(f"{path}: missing field {field!r}")
    if not isinstance(payload["reason"], str) or not payload["reason"]:
        raise ValueError(f"{path}: bad reason")
    if not isinstance(payload["events"], list):
        raise ValueError(f"{path}: events is not a list")
    spans = 0
    for i, event in enumerate(payload["events"]):
        if not isinstance(event, dict):
            raise ValueError(f"{path}: event {i} is not an object")
        etype = event.get("type")
        if etype not in FLIGHT_EVENT_TYPES:
            raise ValueError(f"{path}: event {i} has unknown type "
                             f"{etype!r}")
        if etype == "span":
            missing = SPAN_KEYS - event.keys()
            if missing:
                raise ValueError(f"{path}: span event {i} missing keys "
                                 f"{sorted(missing)}")
            spans += 1
        elif etype == "sample":
            if not isinstance(event.get("name"), str) \
                    or not _is_num(event.get("value")):
                raise ValueError(f"{path}: sample event {i} malformed")
        else:                                       # note
            if not isinstance(event.get("message"), str):
                raise ValueError(f"{path}: note event {i} malformed")
        if not _is_num(event.get("ts_us")) or event["ts_us"] < 0:
            raise ValueError(f"{path}: event {i} bad ts_us")
    if "exception" in payload:
        exc = payload["exception"]
        if not isinstance(exc, dict) \
                or not isinstance(exc.get("type"), str) \
                or not isinstance(exc.get("traceback"), str):
            raise ValueError(f"{path}: malformed exception section")
    # The embedded metrics snapshot obeys the metrics schema; reuse it
    # structurally by validating the sections inline.
    snap = payload["metrics"]
    if not isinstance(snap, dict) \
            or any(section not in snap for section in METRICS_SECTIONS):
        raise ValueError(f"{path}: malformed metrics snapshot")
    return {"events": len(payload["events"]), "spans": spans}


#: ``name{labels} value [timestamp]`` — enough of the Prometheus text
#: format to catch a broken renderer.
_PROM_SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? "
    r"([+-]?(?:\d+\.?\d*(?:[eE][+-]?\d+)?|inf|nan))$")
_PROM_TYPES = frozenset({"counter", "gauge", "summary", "histogram",
                         "untyped"})


def validate_prometheus_text(path: str | Path) -> dict:
    """Validate Prometheus text exposition; returns {samples, types}.

    Checks sample-line syntax, ``# TYPE`` declarations, and per-
    histogram bucket monotonicity (cumulative ``le`` counts must not
    decrease and must end at ``+Inf`` == ``_count``).
    """
    text = Path(path).read_text(encoding="utf-8")
    samples = 0
    types: dict[str, str] = {}
    buckets: dict[str, list[tuple[float, float]]] = {}
    counts: dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in _PROM_TYPES:
                raise ValueError(f"{path}:{lineno}: bad TYPE line")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = _PROM_SAMPLE.match(line)
        if not match:
            raise ValueError(f"{path}:{lineno}: bad sample line "
                             f"{line!r}")
        name, labels, value = match.groups()
        samples += 1
        if name.endswith("_bucket") and labels and "le=" in labels:
            le = labels.split('le="', 1)[1].split('"', 1)[0]
            bound = float("inf") if le == "+Inf" else float(le)
            buckets.setdefault(name[:-len("_bucket")], []).append(
                (bound, float(value)))
        elif name.endswith("_count"):
            counts[name[:-len("_count")]] = float(value)
    for base, pairs in buckets.items():
        last = -1.0
        for bound, cum in pairs:
            if cum < last:
                raise ValueError(
                    f"{path}: histogram {base} bucket counts decrease "
                    f"at le={bound}")
            last = cum
        if pairs[-1][0] != float("inf"):
            raise ValueError(f"{path}: histogram {base} missing +Inf "
                             f"bucket")
        if base in counts and pairs[-1][1] != counts[base]:
            raise ValueError(
                f"{path}: histogram {base} +Inf bucket "
                f"{pairs[-1][1]} != _count {counts[base]}")
    return {"samples": samples, "types": len(types)}


def main(argv: list[str] | None = None) -> int:
    """CLI entry: validate trace JSONL [chrome JSON [metrics JSON]],
    plus ``--prom FILE`` / ``--flight FILE`` for the v2 formats."""
    args = list(sys.argv[1:] if argv is None else argv)
    extra: list[tuple] = []
    for flag, validator in (("--prom", validate_prometheus_text),
                            ("--flight", validate_flight_dump)):
        while flag in args:
            i = args.index(flag)
            try:
                extra.append((args[i + 1], validator))
            except IndexError:
                print(f"{flag} needs a file argument", file=sys.stderr)
                return 2
            del args[i:i + 2]
    if (not args and not extra) or len(args) > 3:
        print("usage: python -m repro.obs.schema [TRACE.jsonl "
              "[TRACE.chrome.json [METRICS.json]]] "
              "[--prom FILE] [--flight FILE]", file=sys.stderr)
        return 2
    validators = (validate_trace_jsonl, validate_chrome_trace,
                  validate_metrics)
    try:
        for path, validator in list(zip(args, validators)) + extra:
            summary = validator(path)
            print(f"{path}: OK {summary}")
    except (OSError, ValueError) as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
