"""The structured ``repro`` logger.

Replaces the scattered ``print(`` calls: user-facing CLI output goes
through ``get_logger(...).info(...)``, diagnostics through ``debug``,
degradation notices through ``warning``.  The handler is deliberately
minimal so that at the default level (INFO) stdout is **byte-identical**
to the prints it replaced — bare ``%(message)s``, no timestamps or
level prefixes — while still honouring ``--log-level``:

* records below WARNING write to ``sys.stdout``;
* WARNING and above write to ``sys.stderr``;
* both streams are resolved at emit time, so pytest's ``capsys`` and
  other stream swaps capture correctly.

``logging.getLogger("repro")`` owns the handler with
``propagate=False`` — applications embedding repro can remove it and
route the ``repro.*`` hierarchy through their own logging config.
"""

from __future__ import annotations

import logging
import sys

LEVELS = ("debug", "info", "warning", "error")

_CONFIGURED = False


class _StreamSplitHandler(logging.Handler):
    """Message-only handler: INFO/DEBUG -> stdout, WARNING+ -> stderr,
    streams looked up per record."""

    def emit(self, record: logging.LogRecord) -> None:
        try:
            msg = self.format(record)
            stream = sys.stderr if record.levelno >= logging.WARNING \
                else sys.stdout
            stream.write(msg + "\n")
        except Exception:  # pragma: no cover - logging must never raise
            self.handleError(record)


def _configure() -> logging.Logger:
    global _CONFIGURED
    root = logging.getLogger("repro")
    if not _CONFIGURED:
        handler = _StreamSplitHandler()
        handler.setFormatter(logging.Formatter("%(message)s"))
        root.addHandler(handler)
        root.setLevel(logging.INFO)
        root.propagate = False
        _CONFIGURED = True
    return root


def get_logger(name: str = "repro") -> logging.Logger:
    """A logger under the configured ``repro`` hierarchy."""
    _configure()
    if name != "repro" and not name.startswith("repro."):
        name = f"repro.{name}"
    return logging.getLogger(name)


def set_log_level(level: str) -> None:
    """Set the hierarchy level from a ``--log-level`` string."""
    if level not in LEVELS:
        raise ValueError(f"unknown log level {level!r}; "
                         f"choose from {LEVELS}")
    _configure().setLevel(getattr(logging, level.upper()))
