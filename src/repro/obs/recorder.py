"""Flight recorder: always-on crash forensics for long-lived processes.

Full tracing (``--trace``) is opt-in because nobody wants gigabytes of
JSONL from a daemon that mostly serves warm cache hits.  But when that
daemon *does* crash — or wedges and gets a ``SIGUSR1`` — the question
is always "what was it doing in the last few seconds?".  The flight
recorder answers it at near-zero steady-state cost:

* a bounded ring buffer (``collections.deque(maxlen=N)``) of the most
  recent **span records** — the tracer mirrors every finished span
  into the ring whenever a recorder is armed, even with tracing
  disabled (see :meth:`repro.obs.tracer.Tracer.attach_flight`) — plus
  explicit **metric samples** recorded by interested call sites (the
  daemon drops one per request);
* :meth:`FlightRecorder.dump` writes a timestamped JSON file with the
  ring contents, a full metrics snapshot, and (for crashes) the
  formatted traceback, then returns the path;
* trigger wiring: ``SIGUSR1`` (live forensics without stopping the
  service), ``sys.excepthook`` (unhandled crashes), and explicit
  ``crash_dump`` calls from the daemon's job runner and the pool's
  chunk runner.

Pool workers arm themselves from the environment
(:func:`maybe_arm_from_env`): a daemon or CLI that arms its own
recorder exports :data:`FLIGHT_DIR_ENV`, so forked/spawned workers
inherit the dump directory and produce their own dumps when a chunk
raises — per-process rings, per-process files, no cross-process
coordination.

The ring is determinism-safe like the rest of :mod:`repro.obs`:
nothing in it is ever read back by a computation.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import threading
import time
import traceback
from collections import deque
from pathlib import Path

from repro.obs.metrics import metrics
from repro.obs.tracer import trace

#: Environment variable naming the dump directory; exported by
#: whoever arms the recorder so pool workers arm themselves too.
FLIGHT_DIR_ENV = "REPRO_FLIGHT_DIR"

#: Default ring capacity: recent-history window, not a trace.
DEFAULT_CAPACITY = 4096

#: Schema tag written into every dump (validated by
#: :mod:`repro.obs.schema`).
DUMP_SCHEMA = "repro.flight/2"


class FlightRecorder:
    """Bounded ring of recent spans/samples plus dump triggers."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self._ring: deque = deque(maxlen=capacity)
        self._dir: Path | None = None
        self._armed = False
        self._lock = threading.Lock()
        self._prev_excepthook = None
        self._prev_sigusr1 = None
        self._env_exported = False
        self.dumps_written = 0

    # -- state ---------------------------------------------------------------

    @property
    def armed(self) -> bool:
        return self._armed

    @property
    def directory(self) -> Path | None:
        return self._dir

    def arm(self, directory: str | Path, *, export_env: bool = True,
            install_signal: bool = False,
            install_excepthook: bool = False) -> "FlightRecorder":
        """Start mirroring spans into the ring; dumps go to *directory*.

        ``export_env`` publishes the directory so pool workers arm
        themselves (:func:`maybe_arm_from_env`).  ``install_signal``
        registers a ``SIGUSR1`` handler (main thread only — silently
        skipped elsewhere); ``install_excepthook`` chains a dump in
        front of ``sys.excepthook``.
        """
        self._dir = Path(directory)
        self._armed = True
        if export_env:
            os.environ[FLIGHT_DIR_ENV] = str(self._dir)
            self._env_exported = True
        trace.attach_flight(self)
        if install_signal:
            try:
                self._prev_sigusr1 = signal.signal(
                    signal.SIGUSR1, self._on_sigusr1)
            except ValueError:      # not the main thread
                self._prev_sigusr1 = None
        if install_excepthook and self._prev_excepthook is None:
            self._prev_excepthook = sys.excepthook
            sys.excepthook = self._on_excepthook
        return self

    def disarm(self) -> None:
        """Stop recording and unwind the hooks (tests, daemon stop)."""
        trace.detach_flight()
        self._armed = False
        if self._env_exported:
            os.environ.pop(FLIGHT_DIR_ENV, None)
            self._env_exported = False
        if self._prev_excepthook is not None:
            sys.excepthook = self._prev_excepthook
            self._prev_excepthook = None
        if self._prev_sigusr1 is not None:
            try:
                signal.signal(signal.SIGUSR1, self._prev_sigusr1)
            except ValueError:      # pragma: no cover - not main thread
                pass
            self._prev_sigusr1 = None
        self._ring.clear()

    # -- recording -----------------------------------------------------------

    def record_span(self, record: dict) -> None:
        """Ring-append one finished span record (tracer callback)."""
        self._ring.append({"type": "span", **record})

    def record_sample(self, name: str, value: float, **attrs) -> None:
        """Ring-append one metric sample (explicit call sites)."""
        self._ring.append({"type": "sample", "name": name,
                           "value": value, "ts_us": time.time_ns() // 1000,
                           "attrs": attrs})

    def record_note(self, message: str, **attrs) -> None:
        """Ring-append one free-form breadcrumb."""
        self._ring.append({"type": "note", "message": message,
                           "ts_us": time.time_ns() // 1000,
                           "attrs": attrs})

    def events(self) -> list[dict]:
        return list(self._ring)

    # -- dumping -------------------------------------------------------------

    def dump(self, reason: str, exc: BaseException | None = None,
             directory: str | Path | None = None) -> Path:
        """Write the ring + metrics snapshot to a timestamped file."""
        directory = Path(directory or self._dir or ".")
        directory.mkdir(parents=True, exist_ok=True)
        stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime())
        with self._lock:
            path = directory / (f"flight-{stamp}-{os.getpid()}-"
                                f"{self.dumps_written}.json")
            payload = {
                "schema": DUMP_SCHEMA,
                "reason": reason,
                "pid": os.getpid(),
                "ts_us": time.time_ns() // 1000,
                "events": list(self._ring),
                "metrics": metrics.snapshot(),
            }
            if exc is not None:
                payload["exception"] = {
                    "type": type(exc).__name__,
                    "message": str(exc),
                    "traceback": "".join(traceback.format_exception(
                        type(exc), exc, exc.__traceback__)),
                }
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True,
                          default=str)
                fh.write("\n")
            self.dumps_written += 1
        metrics.inc("flight.dumps")
        return path

    def crash_dump(self, reason: str,
                   exc: BaseException) -> Path | None:
        """Best-effort :meth:`dump` for exception paths: a no-op when
        disarmed, and never raises (forensics must not mask the
        original failure)."""
        if not self._armed:
            return None
        try:
            return self.dump(reason, exc=exc)
        except OSError:             # pragma: no cover - disk full etc.
            return None

    # -- trigger plumbing ----------------------------------------------------

    def _on_sigusr1(self, signum, frame) -> None:
        del signum, frame
        self.dump("sigusr1")

    def _on_excepthook(self, exc_type, exc, tb) -> None:
        if exc is not None:
            exc.__traceback__ = tb
            self.crash_dump("excepthook", exc)
        hook = self._prev_excepthook or sys.__excepthook__
        hook(exc_type, exc, tb)


#: The process-wide recorder.  Import it, don't construct your own.
flight = FlightRecorder()


def maybe_arm_from_env() -> bool:
    """Arm :data:`flight` from :data:`FLIGHT_DIR_ENV` if it is set and
    the recorder is not already armed.  Called by pool-worker
    initializers so worker processes inherit the parent's forensics
    without any API threading."""
    directory = os.environ.get(FLIGHT_DIR_ENV)
    if not directory or flight.armed:
        return flight.armed
    flight.arm(directory, export_env=False)
    return True
