"""Fixed-log-bucket histograms for latency-shaped distributions.

The scalar ``stats`` family in :mod:`repro.obs.metrics` keeps
count/total/min/max — enough for benchmark deltas, useless for a
service: one slow request vanishes into the mean.  A
:class:`Histogram` keeps per-bucket counts over a **fixed, global**
log-spaced bucket ladder, so

* observation cost is one ``bisect`` into a 34-entry tuple (the hot
  daemon path can afford it on every request);
* two histograms — from two processes, two runs, two snapshots — merge
  by plain bucket-count addition, with no re-bucketing error;
* the Prometheus text exposition gets honest cumulative ``le`` buckets
  without per-metric configuration.

The ladder is powers of two from ~1 microsecond to ~4096 seconds
(:data:`BUCKET_BOUNDS`), chosen to bracket everything the flow
produces — a disabled-span probe on the left, a cold MAERI-128 flow
compute on the right.  Values beyond the top bound land in a single
overflow bucket rendered as ``le="+Inf"``.

Snapshots serialize sparsely ({le-label: count} for occupied buckets
only) so a mostly-idle daemon's metrics dump stays small; labels are
the exact ``repr`` of the bound so round-tripping through JSON is
lossless.
"""

from __future__ import annotations

from bisect import bisect_left

#: The global bucket ladder: 2**-20 s (~0.95 us) .. 2**12 s (~68 min),
#: one bucket per power of two.  Shared by every histogram so counts
#: merge across processes and runs without re-bucketing.
BUCKET_BOUNDS: tuple[float, ...] = tuple(2.0 ** e for e in range(-20, 13))

#: The ``le`` label of the overflow bucket.
INF_LABEL = "+Inf"


def bucket_label(bound: float) -> str:
    """The JSON/exposition label of one bucket bound (exact repr)."""
    return repr(bound)


#: Label per bound, precomputed (labels are emitted per snapshot).
BUCKET_LABELS: tuple[str, ...] = tuple(bucket_label(b)
                                       for b in BUCKET_BOUNDS)


class Histogram:
    """One fixed-bucket histogram; see the module docstring."""

    __slots__ = ("counts", "count", "total", "vmin", "vmax")

    def __init__(self) -> None:
        #: One slot per bound plus the overflow bucket.
        self.counts = [0] * (len(BUCKET_BOUNDS) + 1)
        self.count = 0
        self.total = 0.0
        self.vmin = float("inf")
        self.vmax = float("-inf")

    def observe(self, value: float) -> None:
        """Count *value* into its bucket (``le`` semantics: the first
        bound >= value, inclusive)."""
        self.counts[bisect_left(BUCKET_BOUNDS, value)] += 1
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value

    def merge(self, other: "Histogram") -> None:
        """Add *other*'s buckets into this histogram (same ladder by
        construction, so this is exact)."""
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.total += other.total
        self.vmin = min(self.vmin, other.vmin)
        self.vmax = max(self.vmax, other.vmax)

    # -- serialization -------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready dict: sparse {le-label: count} plus the scalars."""
        buckets = {BUCKET_LABELS[i]: c
                   for i, c in enumerate(self.counts[:-1]) if c}
        if self.counts[-1]:
            buckets[INF_LABEL] = self.counts[-1]
        return {
            "count": self.count,
            "total": self.total,
            "min": self.vmin if self.count else 0.0,
            "max": self.vmax if self.count else 0.0,
            "buckets": buckets,
        }

    @classmethod
    def from_snapshot(cls, snap: dict) -> "Histogram":
        """Inverse of :meth:`snapshot` (trend/diff tooling)."""
        hist = cls()
        label_index = {label: i for i, label in enumerate(BUCKET_LABELS)}
        for label, count in snap["buckets"].items():
            if label == INF_LABEL:
                hist.counts[-1] = int(count)
            else:
                hist.counts[label_index[label]] = int(count)
        hist.count = int(snap["count"])
        hist.total = float(snap["total"])
        if hist.count:
            hist.vmin = float(snap["min"])
            hist.vmax = float(snap["max"])
        return hist

    def cumulative(self) -> list[tuple[str, int]]:
        """Cumulative (le-label, count) pairs over the **full** ladder,
        ending with ``+Inf`` — the Prometheus exposition shape."""
        out = []
        acc = 0
        for i, bound_label in enumerate(BUCKET_LABELS):
            acc += self.counts[i]
            out.append((bound_label, acc))
        out.append((INF_LABEL, acc + self.counts[-1]))
        return out
