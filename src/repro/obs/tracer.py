"""Hierarchical span tracing with a null fast path.

One module-level :data:`trace` singleton serves the whole process.
While disabled (the default) ``trace.span(...)`` returns a shared
no-op context manager — no allocation, no clock reads — so the
instrumented hot paths cost a single attribute check.  While enabled,
spans nest via an explicit stack, carry key=value attributes, and
accumulate as flat dict records that serialize to

* **JSONL** — one record per line:
  ``{"name", "id", "parent", "pid", "ts_us", "dur_us", "attrs"}``
  with ``parent`` the enclosing span's id (or ``None`` for roots);
* **Chrome trace-event JSON** — complete (``"ph": "X"``) events
  loadable in ``chrome://tracing`` or https://ui.perfetto.dev, one
  timeline row per process id, so merged pool-worker spans show up as
  their own lanes under the parent flow.

Pool workers run in separate processes: the parent ships the active
span id with each task (:meth:`Tracer.export_parent`), the worker
wraps its chunk in :meth:`Tracer.collect_worker` — which records into
a fresh buffer rooted at that parent id — and returns the buffer for
the parent to :meth:`Tracer.merge`.  Span ids are ``"<pid>-<seq>"``
so ids never collide across processes, and the in-process serial
fallback (same pid, monotonic seq) stays collision-free too.

The span *stack* is per-thread (``threading.local``): concurrent
flows in one process — e.g. the service daemon's ``flow_workers``
executor threads — each nest under their own roots instead of
interleaving onto one shared stack.  The record buffer stays
process-wide (list appends are atomic under the GIL), so one
``write_jsonl`` still serializes every thread's spans.
:meth:`collect_worker` parks only the calling thread's stack; it is
meant for single-threaded pool worker processes.

Timestamps are wall-clock microseconds (comparable across processes);
durations come from ``perf_counter_ns``.  Nothing here is read back
by any computation — tracing is determinism-safe by construction.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path


class _NullSpan:
    """Shared no-op span: the disabled-tracing fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class _Span:
    """One live span; created only while the tracer is enabled."""

    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id",
                 "ts_us", "_t0")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_Span":
        t = self._tracer
        frame = t._frame()
        stack = frame.stack
        self.parent_id = stack[-1] if stack else frame.root_parent
        self.span_id = t._next_id()
        stack.append(self.span_id)
        self.ts_us = time.time_ns() // 1000
        self._t0 = time.perf_counter_ns()
        return self

    def set(self, **attrs) -> "_Span":
        """Attach attributes discovered mid-span."""
        self.attrs.update(attrs)
        return self

    def __exit__(self, *exc_info) -> bool:
        dur_us = (time.perf_counter_ns() - self._t0) / 1000.0
        t = self._tracer
        t._frame().stack.pop()
        t._records.append({
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "pid": t._pid,
            "ts_us": self.ts_us,
            "dur_us": round(dur_us, 3),
            "attrs": self.attrs,
        })
        return False


class _ThreadFrame:
    """Per-thread tracer state: the span stack plus the parent id
    grafted onto its stack-root spans (worker collection)."""

    __slots__ = ("stack", "root_parent")

    def __init__(self) -> None:
        self.stack: list[str] = []
        self.root_parent: str | None = None


class Tracer:
    """Span recorder; see the module docstring for the model."""

    def __init__(self) -> None:
        self._enabled = False
        self._records: list[dict] = []
        self._local = threading.local()
        #: Atomic under the GIL — threads share one id sequence.
        self._seq = itertools.count(1)
        self._pid = os.getpid()

    def _frame(self) -> _ThreadFrame:
        frame = getattr(self._local, "frame", None)
        if frame is None:
            frame = self._local.frame = _ThreadFrame()
        return frame

    # -- state ---------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._pid = os.getpid()
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def reset(self) -> None:
        """Drop all recorded spans and the calling thread's stack (the
        seq counter keeps running so ids stay unique across resets)."""
        self._records = []
        frame = self._frame()
        frame.stack = []
        frame.root_parent = None

    @property
    def records(self) -> list[dict]:
        """The recorded span dicts, in completion order."""
        return self._records

    def _next_id(self) -> str:
        return f"{self._pid:x}-{next(self._seq):x}"

    # -- spans ---------------------------------------------------------------

    def span(self, name: str, **attrs):
        """Context manager for one span; a shared no-op when disabled.

        Attribute values must be JSON-representable scalars (str, int,
        float, bool) — they go straight into the trace output.
        """
        if not self._enabled:
            return _NULL_SPAN
        return _Span(self, name, attrs)

    # -- cross-process collection --------------------------------------------

    def export_parent(self) -> str | None:
        """Token shipped with pool tasks.

        ``None`` means tracing is off (workers skip collection
        entirely); the empty string means on-but-no-active-span.
        """
        if not self._enabled:
            return None
        stack = self._frame().stack
        return stack[-1] if stack else ""

    @contextmanager
    def collect_worker(self, parent_id: str):
        """Record spans into a fresh buffer rooted at *parent_id*.

        Used around a worker-side chunk: whatever tracer state the
        process inherited (fork copies the parent's live tracer) is
        parked — including the calling thread's stack frame — spans
        collect into the yielded list with stack roots parented to
        *parent_id*, and the prior state is restored so persistent
        pool workers stay clean between chunks.  The seq counter is
        never rewound — combined with the per-process pid prefix that
        keeps ids unique in both the forked and the in-process
        serial-fallback case.
        """
        frame = self._frame()
        saved = (self._enabled, self._records, frame.stack,
                 frame.root_parent, self._pid)
        self._enabled = True
        self._records = records = []
        frame.stack = []
        frame.root_parent = parent_id or None
        self._pid = os.getpid()
        try:
            yield records
        finally:
            (self._enabled, self._records, frame.stack,
             frame.root_parent, self._pid) = saved

    def merge(self, records: list[dict]) -> None:
        """Append worker-collected span records to this tracer."""
        self._records.extend(records)

    # -- serialization -------------------------------------------------------

    def write_jsonl(self, path: str | Path) -> int:
        """Write one span record per line; returns the record count."""
        with open(path, "w", encoding="utf-8") as fh:
            for rec in self._records:
                fh.write(json.dumps(rec, sort_keys=True, default=str))
                fh.write("\n")
        return len(self._records)

    def write_chrome(self, path: str | Path) -> int:
        """Write the Chrome trace-event view; returns the event count.

        Timestamps are rebased to the earliest span so the timeline
        opens at t=0 in ``chrome://tracing`` / Perfetto.
        """
        base = min((rec["ts_us"] for rec in self._records), default=0)
        events = [{
            "name": rec["name"],
            "cat": rec["name"].split(".", 1)[0],
            "ph": "X",
            "ts": rec["ts_us"] - base,
            "dur": rec["dur_us"],
            "pid": rec["pid"],
            "tid": rec["pid"],
            "args": rec["attrs"],
        } for rec in self._records]
        payload = {"traceEvents": events, "displayTimeUnit": "ms"}
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, default=str)
            fh.write("\n")
        return len(events)


def chrome_trace_path(jsonl_path: str | Path) -> Path:
    """The Chrome-format sibling of a JSONL trace path
    (``run.jsonl`` -> ``run.chrome.json``)."""
    return Path(jsonl_path).with_suffix(".chrome.json")


#: The process-wide tracer.  Import it, don't construct your own.
trace = Tracer()
