"""Hierarchical span tracing with a null fast path.

One module-level :data:`trace` singleton serves the whole process.
While disabled (the default) ``trace.span(...)`` returns a shared
no-op context manager — no allocation, no clock reads — so the
instrumented hot paths cost a single attribute check.  While enabled,
spans nest via an explicit stack, carry key=value attributes, and
accumulate as flat dict records that serialize to

* **JSONL** — one record per line:
  ``{"name", "id", "parent", "pid", "ts_us", "dur_us", "attrs"}``
  with ``parent`` the enclosing span's id (or ``None`` for roots);
* **Chrome trace-event JSON** — complete (``"ph": "X"``) events
  loadable in ``chrome://tracing`` or https://ui.perfetto.dev, one
  timeline row per process id, so merged pool-worker spans show up as
  their own lanes under the parent flow.

Pool workers run in separate processes: the parent ships the active
span id with each task (:meth:`Tracer.export_parent`), the worker
wraps its chunk in :meth:`Tracer.collect_worker` — which records into
a fresh buffer rooted at that parent id — and returns the buffer for
the parent to :meth:`Tracer.merge`.  Span ids are ``"<pid>-<seq>"``
so ids never collide across processes, and the in-process serial
fallback (same pid, monotonic seq) stays collision-free too.

The span *stack* is per-thread (``threading.local``): concurrent
flows in one process — e.g. the service daemon's ``flow_workers``
executor threads — each nest under their own roots instead of
interleaving onto one shared stack.  The record buffer stays
process-wide (list appends are atomic under the GIL), so one
``write_jsonl`` still serializes every thread's spans.
:meth:`collect_worker` parks only the calling thread's stack; it is
meant for single-threaded pool worker processes.

Long-lived processes (the service daemon) must not grow an unbounded
in-memory record list or trace file: :class:`RotatingTraceSink`
streams each record to JSONL as its span closes and rolls the file
over at a size cap (``run.jsonl`` -> ``run.jsonl.1`` ...), and
``attach_sink(..., keep_records=False)`` keeps the in-memory buffer
empty in sink mode.

A *request id* can be pinned to the calling thread
(:meth:`Tracer.set_request`): every span the thread (and any pool
worker it dispatches to — the id rides the ``export_parent`` token)
opens while pinned carries a ``req`` attribute, so cross-process span
merging groups by request rather than pid alone.  The service daemon
pins one id per ``flow`` request.

Timestamps are wall-clock microseconds (comparable across processes);
durations come from ``perf_counter_ns``.  Nothing here is read back
by any computation — tracing is determinism-safe by construction.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path


class _NullSpan:
    """Shared no-op span: the disabled-tracing fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()

#: Separator between the parent-span id and the request id in an
#: ``export_parent`` token.  Span ids are ``<pid hex>-<seq hex>`` and
#: never contain it.
_REQ_SEP = "|"


class RotatingTraceSink:
    """Streaming JSONL span writer with size-based rollover.

    Records append to *path* as their spans close; once the file would
    exceed *max_bytes* it rotates — ``path`` -> ``path.1`` ->
    ``path.2`` ... up to *backups* generations, oldest dropped — so a
    daemon tracing for days holds at most ``(backups + 1) * max_bytes``
    of trace on disk and nothing in memory.
    """

    def __init__(self, path: str | Path, max_bytes: int = 64 << 20,
                 backups: int = 3):
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.path = Path(path)
        self.max_bytes = max_bytes
        self.backups = max(0, backups)
        self.rotations = 0
        self.records_written = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "w", encoding="utf-8")
        self._bytes = 0

    def write(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True, default=str) + "\n"
        if self._bytes and self._bytes + len(line) > self.max_bytes:
            self._rotate()
        self._fh.write(line)
        self._bytes += len(line)
        self.records_written += 1

    def _rotate(self) -> None:
        self._fh.close()
        oldest = self.path.with_name(f"{self.path.name}.{self.backups}")
        oldest.unlink(missing_ok=True)
        for gen in range(self.backups - 1, 0, -1):
            src = self.path.with_name(f"{self.path.name}.{gen}")
            if src.exists():
                src.rename(self.path.with_name(
                    f"{self.path.name}.{gen + 1}"))
        if self.backups:
            self.path.rename(self.path.with_name(f"{self.path.name}.1"))
        else:
            self.path.unlink(missing_ok=True)
        self._fh = open(self.path, "w", encoding="utf-8")
        self._bytes = 0
        self.rotations += 1

    def flush(self) -> None:
        self._fh.flush()

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


class _Span:
    """One live span; created only while the tracer is enabled."""

    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id",
                 "ts_us", "_t0")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_Span":
        t = self._tracer
        frame = t._frame()
        stack = frame.stack
        self.parent_id = stack[-1] if stack else frame.root_parent
        self.span_id = t._next_id()
        stack.append(self.span_id)
        if frame.request_id is not None and "req" not in self.attrs:
            self.attrs["req"] = frame.request_id
        self.ts_us = time.time_ns() // 1000
        self._t0 = time.perf_counter_ns()
        return self

    def set(self, **attrs) -> "_Span":
        """Attach attributes discovered mid-span."""
        self.attrs.update(attrs)
        return self

    def __exit__(self, *exc_info) -> bool:
        dur_us = (time.perf_counter_ns() - self._t0) / 1000.0
        t = self._tracer
        t._frame().stack.pop()
        t._emit({
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "pid": t._pid,
            "ts_us": self.ts_us,
            "dur_us": round(dur_us, 3),
            "attrs": self.attrs,
        })
        return False


class _ThreadFrame:
    """Per-thread tracer state: the span stack, the parent id grafted
    onto its stack-root spans (worker collection), and the request id
    pinned to the thread's spans."""

    __slots__ = ("stack", "root_parent", "request_id")

    def __init__(self) -> None:
        self.stack: list[str] = []
        self.root_parent: str | None = None
        self.request_id: str | None = None


class Tracer:
    """Span recorder; see the module docstring for the model."""

    def __init__(self) -> None:
        self._enabled = False
        self._records: list[dict] = []
        self._local = threading.local()
        #: Atomic under the GIL — threads share one id sequence.
        self._seq = itertools.count(1)
        self._pid = os.getpid()
        self._sink: RotatingTraceSink | None = None
        self._keep_records = True
        #: Flight recorder ring (:mod:`repro.obs.recorder`); when set,
        #: spans are created and mirrored into it even with tracing
        #: disabled.
        self._flight = None

    def _frame(self) -> _ThreadFrame:
        frame = getattr(self._local, "frame", None)
        if frame is None:
            frame = self._local.frame = _ThreadFrame()
        return frame

    # -- state ---------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._pid = os.getpid()
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def reset(self) -> None:
        """Drop all recorded spans and the calling thread's stack (the
        seq counter keeps running so ids stay unique across resets)."""
        self._records = []
        frame = self._frame()
        frame.stack = []
        frame.root_parent = None
        frame.request_id = None

    @property
    def records(self) -> list[dict]:
        """The recorded span dicts, in completion order."""
        return self._records

    def _next_id(self) -> str:
        return f"{self._pid:x}-{next(self._seq):x}"

    def _emit(self, record: dict) -> None:
        """Route one finished span record to every active consumer."""
        if self._enabled:
            if self._keep_records:
                self._records.append(record)
            if self._sink is not None:
                self._sink.write(record)
        if self._flight is not None:
            self._flight.record_span(record)

    # -- streaming sink ------------------------------------------------------

    @property
    def sink(self) -> RotatingTraceSink | None:
        return self._sink

    def attach_sink(self, sink: RotatingTraceSink,
                    keep_records: bool = False) -> None:
        """Stream finished spans through *sink* (size-capped JSONL).

        With ``keep_records=False`` (the long-lived-daemon mode) the
        in-memory record buffer stays empty, so neither the trace file
        nor process memory grows without bound.
        """
        self._sink = sink
        self._keep_records = keep_records

    def detach_sink(self) -> RotatingTraceSink | None:
        """Close and return the active sink (restores buffering)."""
        sink, self._sink = self._sink, None
        self._keep_records = True
        if sink is not None:
            sink.close()
        return sink

    # -- flight recorder -----------------------------------------------------

    def attach_flight(self, recorder) -> None:
        """Mirror every finished span into *recorder*'s ring buffer —
        even while tracing is disabled (the always-on crash path)."""
        self._pid = os.getpid()
        self._flight = recorder

    def detach_flight(self) -> None:
        self._flight = None

    # -- request ids ---------------------------------------------------------

    def set_request(self, request_id: str | None) -> None:
        """Pin *request_id* to the calling thread: every span it opens
        (and every pool-worker span it dispatches) carries
        ``attrs["req"]`` until cleared with ``None``."""
        self._frame().request_id = request_id

    def current_request(self) -> str | None:
        return self._frame().request_id

    # -- spans ---------------------------------------------------------------

    def span(self, name: str, **attrs):
        """Context manager for one span; a shared no-op when disabled.

        Attribute values must be JSON-representable scalars (str, int,
        float, bool) — they go straight into the trace output.
        """
        if not self._enabled and self._flight is None:
            return _NULL_SPAN
        return _Span(self, name, attrs)

    # -- cross-process collection --------------------------------------------

    def export_parent(self) -> str | None:
        """Token shipped with pool tasks.

        ``None`` means tracing is off (workers skip collection
        entirely); the empty string means on-but-no-active-span.  When
        the calling thread is pinned to a request id, the token is
        ``"<parent-id>|<request-id>"`` so worker spans inherit the
        request grouping across the process boundary.
        """
        if not self._enabled:
            return None
        frame = self._frame()
        token = frame.stack[-1] if frame.stack else ""
        if frame.request_id is not None:
            token = f"{token}{_REQ_SEP}{frame.request_id}"
        return token

    @contextmanager
    def collect_worker(self, parent_id: str):
        """Record spans into a fresh buffer rooted at *parent_id*.

        Used around a worker-side chunk: whatever tracer state the
        process inherited (fork copies the parent's live tracer) is
        parked — including the calling thread's stack frame — spans
        collect into the yielded list with stack roots parented to
        *parent_id*, and the prior state is restored so persistent
        pool workers stay clean between chunks.  The seq counter is
        never rewound — combined with the per-process pid prefix that
        keeps ids unique in both the forked and the in-process
        serial-fallback case.
        """
        parent, _, request = parent_id.partition(_REQ_SEP)
        frame = self._frame()
        saved = (self._enabled, self._records, self._sink,
                 self._keep_records, frame.stack, frame.root_parent,
                 frame.request_id, self._pid)
        self._enabled = True
        self._records = records = []
        self._sink = None               # the parent owns the sink
        self._keep_records = True
        frame.stack = []
        frame.root_parent = parent or None
        frame.request_id = request or None
        self._pid = os.getpid()
        try:
            yield records
        finally:
            (self._enabled, self._records, self._sink,
             self._keep_records, frame.stack, frame.root_parent,
             frame.request_id, self._pid) = saved

    def merge(self, records: list[dict]) -> None:
        """Append worker-collected span records to this tracer."""
        if self._keep_records:
            self._records.extend(records)
        if self._sink is not None:
            for rec in records:
                self._sink.write(rec)
        if self._flight is not None:
            for rec in records:
                self._flight.record_span(rec)

    # -- serialization -------------------------------------------------------

    def write_jsonl(self, path: str | Path) -> int:
        """Write one span record per line; returns the record count."""
        with open(path, "w", encoding="utf-8") as fh:
            for rec in self._records:
                fh.write(json.dumps(rec, sort_keys=True, default=str))
                fh.write("\n")
        return len(self._records)

    def write_chrome(self, path: str | Path) -> int:
        """Write the Chrome trace-event view; returns the event count.

        Timestamps are rebased to the earliest span so the timeline
        opens at t=0 in ``chrome://tracing`` / Perfetto.
        """
        base = min((rec["ts_us"] for rec in self._records), default=0)
        events = [{
            "name": rec["name"],
            "cat": rec["name"].split(".", 1)[0],
            "ph": "X",
            "ts": rec["ts_us"] - base,
            "dur": rec["dur_us"],
            "pid": rec["pid"],
            "tid": rec["pid"],
            "args": rec["attrs"],
        } for rec in self._records]
        payload = {"traceEvents": events, "displayTimeUnit": "ms"}
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, default=str)
            fh.write("\n")
        return len(events)


def chrome_trace_path(jsonl_path: str | Path) -> Path:
    """The Chrome-format sibling of a JSONL trace path
    (``run.jsonl`` -> ``run.chrome.json``)."""
    return Path(jsonl_path).with_suffix(".chrome.json")


#: The process-wide tracer.  Import it, don't construct your own.
trace = Tracer()
