"""Zero-dependency observability: spans, counters, structured logs.

The flow is performance-engineered end to end (process pool, wavefront
router, incremental STA, cached-Laplacian placer) but was a black box
at runtime — two ad-hoc ``perf_counter`` windows in ``run_flow`` and
nothing else.  This package is the measurement substrate:

* :mod:`repro.obs.tracer` — hierarchical **spans**
  (``with trace.span("place.solve", level=k):``) that nest, carry
  key=value attributes, and serialize to JSONL plus the Chrome
  ``chrome://tracing`` / Perfetto trace-event format.  Pool workers
  collect their spans locally and the parent merges them with correct
  parent-span ids (see :meth:`Tracer.collect_worker`).
* :mod:`repro.obs.metrics` — process-wide **counters / gauges /
  stats** (nets routed, wave packing sizes, STA arc propagations,
  incremental frontier sizes, prepare/LRU cache hits, pool task
  counts and latencies) aggregated into one run-level dict.
* :mod:`repro.obs.log` — the structured ``repro`` logger replacing
  scattered prints: bare messages on stdout at the default level
  (byte-identical to the prints it replaced), WARNING and above on
  stderr, level switchable via ``--log-level``.
* :mod:`repro.obs.schema` — validators for the trace/metrics file
  formats, shared by the test suite and the CI smoke job.

Contracts:

* **Off by default with a no-op fast path** — ``trace`` is a
  module-level singleton whose ``span()`` returns a shared null
  context manager while disabled; the counters are plain dict
  increments.  The instrumented hot paths stay within noise of the
  un-instrumented code (locked loosely by ``tests/test_obs.py``).
* **Determinism-safe** — nothing in here feeds back into any
  computation.  All golden fixtures and bit-identical equivalence
  tests pass unchanged with tracing enabled; wall-clock values live
  only in trace/metrics output, never in ``FlowReport.row()``.
"""

from repro.obs.log import LEVELS, get_logger, set_log_level
from repro.obs.metrics import MetricsRegistry, metrics
from repro.obs.tracer import Tracer, chrome_trace_path, trace

__all__ = [
    "LEVELS",
    "MetricsRegistry",
    "Tracer",
    "chrome_trace_path",
    "get_logger",
    "metrics",
    "set_log_level",
    "trace",
]
