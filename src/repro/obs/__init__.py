"""Zero-dependency observability: spans, counters, structured logs.

The flow is performance-engineered end to end (process pool, wavefront
router, incremental STA, cached-Laplacian placer) but was a black box
at runtime — two ad-hoc ``perf_counter`` windows in ``run_flow`` and
nothing else.  This package is the measurement substrate:

* :mod:`repro.obs.tracer` — hierarchical **spans**
  (``with trace.span("place.solve", level=k):``) that nest, carry
  key=value attributes, and serialize to JSONL plus the Chrome
  ``chrome://tracing`` / Perfetto trace-event format.  Pool workers
  collect their spans locally and the parent merges them with correct
  parent-span ids (see :meth:`Tracer.collect_worker`).  Long-lived
  processes stream spans through a size-capped
  :class:`RotatingTraceSink` instead of buffering forever.
* :mod:`repro.obs.metrics` — process-wide **counters / gauges /
  stats / histograms** (nets routed, wave packing sizes, STA arc
  propagations, service request latencies) aggregated into one
  run-level dict and renderable as Prometheus text exposition
  (:func:`render_prometheus`).
* :mod:`repro.obs.histogram` — the fixed-log-bucket
  :class:`Histogram` behind the fourth metrics family: one global
  power-of-two bucket ladder shared by every histogram, so
  cross-process and cross-run merges are exact.
* :mod:`repro.obs.recorder` — the :data:`flight` recorder: a bounded
  ring of recent spans/samples, armed in the daemon and pool workers,
  dumped to a timestamped file on unhandled exception or ``SIGUSR1``.
* :mod:`repro.obs.analyze` — trace analysis for ``repro trace
  report`` / ``diff``: self/cumulative time per span path, critical
  paths, and aligned run-to-run deltas.
* :mod:`repro.obs.trend` — the append-only perf-trend ledger the
  benches write and the ``repro trace gate`` regression check reads.
* :mod:`repro.obs.log` — the structured ``repro`` logger replacing
  scattered prints: bare messages on stdout at the default level
  (byte-identical to the prints it replaced), WARNING and above on
  stderr, level switchable via ``--log-level``.
* :mod:`repro.obs.schema` — validators for the trace/metrics/flight/
  Prometheus file formats, shared by the test suite and the CI smoke
  jobs.

Contracts:

* **Off by default with a no-op fast path** — ``trace`` is a
  module-level singleton whose ``span()`` returns a shared null
  context manager while disabled and no recorder is armed; the
  counters are plain dict increments.  The instrumented hot paths
  stay within noise of the un-instrumented code (locked loosely by
  ``tests/test_obs.py``).
* **Determinism-safe** — nothing in here feeds back into any
  computation.  All golden fixtures and bit-identical equivalence
  tests pass unchanged with tracing enabled or the recorder armed;
  wall-clock values live only in trace/metrics/flight output, never
  in ``FlowReport.row()``.
"""

from repro.obs.histogram import Histogram
from repro.obs.log import LEVELS, get_logger, set_log_level
from repro.obs.metrics import (MetricsRegistry, metrics,
                               prometheus_name, render_prometheus)
from repro.obs.recorder import (FlightRecorder, flight,
                                maybe_arm_from_env)
from repro.obs.tracer import (RotatingTraceSink, Tracer,
                              chrome_trace_path, trace)

__all__ = [
    "FlightRecorder",
    "Histogram",
    "LEVELS",
    "MetricsRegistry",
    "RotatingTraceSink",
    "Tracer",
    "chrome_trace_path",
    "flight",
    "get_logger",
    "maybe_arm_from_env",
    "metrics",
    "prometheus_name",
    "render_prometheus",
    "set_log_level",
    "trace",
]
