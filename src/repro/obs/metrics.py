"""Run-level counters, gauges and scalar stats.

One module-level :data:`metrics` registry per process.  Updates are
plain dict operations — always on, cheap enough for the hot loops
that feed them (one increment per routed net, one per STA update).
Pool *workers* run in separate processes; their registries are local
and discarded, so every wired call site counts at the parent-side
commit/merge point (the wavefront merge, the chunk result drain) —
worker-interior timing detail travels through span collection instead
(:mod:`repro.obs.tracer`).

Three families:

* **counters** — monotonically increasing totals (``inc``);
* **gauges**  — last-write-wins values (``set_gauge``);
* **stats**   — scalar distributions kept as count/total/min/max
  (``observe``; ``add_time`` is the seconds-valued convenience).

``snapshot()`` returns the aggregate dict benchmarks attach to their
``BENCH_*.json`` records; ``write_json()`` is what ``--metrics PATH``
dumps.  Nothing here is read back by any computation — metrics are
determinism-safe by construction.
"""

from __future__ import annotations

import json
from pathlib import Path


class MetricsRegistry:
    """Process-wide metric aggregation; see the module docstring."""

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        #: name -> [count, total, min, max]
        self._stats: dict[str, list[float]] = {}

    # -- updates -------------------------------------------------------------

    def inc(self, name: str, value: float = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        stat = self._stats.get(name)
        if stat is None:
            self._stats[name] = [1, value, value, value]
        else:
            stat[0] += 1
            stat[1] += value
            if value < stat[2]:
                stat[2] = value
            if value > stat[3]:
                stat[3] = value

    def add_time(self, name: str, seconds: float) -> None:
        """Seconds-valued :meth:`observe`; name by convention ``*_s``."""
        self.observe(name, seconds)

    # -- reads ---------------------------------------------------------------

    def counter(self, name: str) -> float:
        return self._counters.get(name, 0)

    def snapshot(self) -> dict:
        """The whole registry as one sorted, JSON-ready dict."""
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
            "stats": {
                name: {"count": stat[0], "total": stat[1],
                       "min": stat[2], "max": stat[3],
                       "mean": stat[1] / stat[0]}
                for name, stat in sorted(self._stats.items())
            },
        }

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._stats.clear()

    def write_json(self, path: str | Path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.snapshot(), fh, indent=2, sort_keys=True,
                      default=str)
            fh.write("\n")


#: The process-wide registry.  Import it, don't construct your own.
metrics = MetricsRegistry()
