"""Run-level counters, gauges and scalar stats.

One module-level :data:`metrics` registry per process.  Updates are
plain dict operations — always on, cheap enough for the hot loops
that feed them (one increment per routed net, one per STA update).
Pool *workers* run in separate processes; their registries are local
and discarded, so every wired call site counts at the parent-side
commit/merge point (the wavefront merge, the chunk result drain) —
worker-interior timing detail travels through span collection instead
(:mod:`repro.obs.tracer`).

Four families:

* **counters**   — monotonically increasing totals (``inc``);
* **gauges**     — last-write-wins values (``set_gauge``);
* **stats**      — scalar distributions kept as count/total/min/max
  (``observe``; ``add_time`` is the seconds-valued convenience);
* **histograms** — fixed-log-bucket distributions
  (:mod:`repro.obs.histogram`) for latency-shaped values where the
  tail matters (``observe_hist``) — the daemon's per-request latency
  lives here.

``snapshot()`` returns the aggregate dict benchmarks attach to their
``BENCH_*.json`` records; ``write_json()`` is what ``--metrics PATH``
dumps; :func:`render_prometheus` is the same registry in Prometheus
text exposition format (the daemon's ``metrics`` verb).  Nothing here
is read back by any computation — metrics are determinism-safe by
construction.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from repro.obs.histogram import Histogram


class MetricsRegistry:
    """Process-wide metric aggregation; see the module docstring."""

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        #: name -> [count, total, min, max]
        self._stats: dict[str, list[float]] = {}
        self._hists: dict[str, Histogram] = {}

    # -- updates -------------------------------------------------------------

    def inc(self, name: str, value: float = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        stat = self._stats.get(name)
        if stat is None:
            self._stats[name] = [1, value, value, value]
        else:
            stat[0] += 1
            stat[1] += value
            if value < stat[2]:
                stat[2] = value
            if value > stat[3]:
                stat[3] = value

    def add_time(self, name: str, seconds: float) -> None:
        """Seconds-valued :meth:`observe`; name by convention ``*_s``."""
        self.observe(name, seconds)

    def observe_hist(self, name: str, value: float) -> None:
        """Count *value* into the fixed-log-bucket histogram *name*."""
        hist = self._hists.get(name)
        if hist is None:
            hist = self._hists[name] = Histogram()
        hist.observe(value)

    # -- reads ---------------------------------------------------------------

    def counter(self, name: str) -> float:
        return self._counters.get(name, 0)

    def hist(self, name: str) -> Histogram | None:
        return self._hists.get(name)

    def snapshot(self) -> dict:
        """The whole registry as one sorted, JSON-ready dict."""
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
            "stats": {
                name: {"count": stat[0], "total": stat[1],
                       "min": stat[2], "max": stat[3],
                       "mean": stat[1] / stat[0]}
                for name, stat in sorted(self._stats.items())
            },
            "histograms": {
                name: hist.snapshot()
                for name, hist in sorted(self._hists.items())
            },
        }

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._stats.clear()
        self._hists.clear()

    def write_json(self, path: str | Path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.snapshot(), fh, indent=2, sort_keys=True,
                      default=str)
            fh.write("\n")


# -- Prometheus text exposition -----------------------------------------------

#: Characters Prometheus metric names may not contain.
_PROM_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def prometheus_name(name: str, prefix: str = "repro_") -> str:
    """``service.request_wait_s`` -> ``repro_service_request_wait_s``."""
    return prefix + _PROM_BAD.sub("_", name)


def render_prometheus(snapshot: dict) -> str:
    """Render one :meth:`MetricsRegistry.snapshot` dict as Prometheus
    text exposition (version 0.0.4).

    * counters -> ``counter``;
    * gauges -> ``gauge``;
    * stats -> ``summary`` (``_sum``/``_count``) plus ``_min``/``_max``
      gauges (Prometheus summaries cannot carry extrema);
    * histograms -> ``histogram`` with cumulative ``le`` buckets over
      the full fixed ladder, ``+Inf``, ``_sum`` and ``_count``.
    """
    lines: list[str] = []

    def emit(name: str, kind: str, sample_lines: list[str]) -> None:
        lines.append(f"# TYPE {name} {kind}")
        lines.extend(sample_lines)

    for name, value in snapshot.get("counters", {}).items():
        pname = prometheus_name(name) + "_total"
        emit(pname, "counter", [f"{pname} {value!r}"])
    for name, value in snapshot.get("gauges", {}).items():
        pname = prometheus_name(name)
        emit(pname, "gauge", [f"{pname} {value!r}"])
    for name, stat in snapshot.get("stats", {}).items():
        pname = prometheus_name(name)
        emit(pname, "summary", [f"{pname}_sum {stat['total']!r}",
                                f"{pname}_count {stat['count']!r}"])
        for field in ("min", "max"):
            gname = f"{pname}_{field}"
            emit(gname, "gauge", [f"{gname} {stat[field]!r}"])
    for name, snap in snapshot.get("histograms", {}).items():
        pname = prometheus_name(name)
        hist = Histogram.from_snapshot(snap)
        samples = [f'{pname}_bucket{{le="{label}"}} {count}'
                   for label, count in hist.cumulative()]
        samples.append(f"{pname}_sum {hist.total!r}")
        samples.append(f"{pname}_count {hist.count}")
        emit(pname, "histogram", samples)
    return "\n".join(lines) + "\n"


#: The process-wide registry.  Import it, don't construct your own.
metrics = MetricsRegistry()
