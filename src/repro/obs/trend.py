"""Perf-trend ledger: append-only leg timings plus a regression gate.

Every ``benchmarks/bench_*.py`` writer produces a rich ``BENCH_*.json``
at the repo root — great for inspecting one run, useless for trends
because each run overwrites the last.  This module unifies the legs
those benches time into one **append-only** JSONL ledger
(``benchmarks/results/trend.jsonl``): one record per bench invocation

    {"v": 1, "ts": "2026-08-09T12:00:00Z", "bench": "place",
     "smoke": true, "legs": {"place.maeri16_hetero.cached_s": 0.41},
     "meta": {"cpu_count": 8}}

with leg names ``<bench>.<benchmark-key>.<leg>_s`` (lower is better,
seconds unless the name says otherwise).  The ledger is what makes a
perf claim auditable: Open3DBench-style trend tracking instead of a
one-shot number in a PR description.

The **gate** (``repro trace gate``) reads the latest sample of every
leg named in a budgets file (``benchmarks/budgets.json``) and fails
when a leg exceeds ``budget * (1 + tolerance)`` — the CI perf-trend
job runs the smoke benches and then this check, so a hot-path
regression larger than the tolerance (15 % by default) cannot merge
silently.  Budgets are deliberately generous absolute ceilings (CI
machines vary); re-baseline with ``repro trace gate
--update-budgets`` after an intentional perf change.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

#: Ledger record revision.
TREND_VERSION = 1

#: Default allowed regression over a leg's budget.
DEFAULT_TOLERANCE = 0.15

#: Default headroom multiplier when (re)writing budgets from the
#: latest samples: budgets are ceilings, not point estimates.
DEFAULT_HEADROOM = 2.0


def _utc_now() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


def append_trend(path: str | Path, bench: str, legs: dict[str, float],
                 meta: dict | None = None,
                 smoke: bool | None = None) -> dict:
    """Append one ledger record for *bench*; returns the record.

    *legs* maps fully-qualified leg names to numeric values (lower is
    better).  Non-finite and non-numeric values are rejected so the
    gate never has to reason about NaN.
    """
    for name, value in legs.items():
        if not isinstance(value, (int, float)) \
                or isinstance(value, bool) \
                or value != value or value in (float("inf"),
                                               float("-inf")):
            raise ValueError(f"leg {name!r} has non-finite value "
                             f"{value!r}")
    record = {"v": TREND_VERSION, "ts": _utc_now(), "bench": bench,
              "legs": {name: round(float(value), 6)
                       for name, value in sorted(legs.items())}}
    if smoke is not None:
        record["smoke"] = bool(smoke)
    if meta:
        record["meta"] = meta
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")
    return record


def load_trend(path: str | Path) -> list[dict]:
    """All ledger records, oldest first; [] for a missing file."""
    path = Path(path)
    if not path.exists():
        return []
    records = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: not a JSON trend record: "
                    f"{exc}") from None
            if not isinstance(rec, dict) or "legs" not in rec:
                raise ValueError(f"{path}:{lineno}: no legs section")
            records.append(rec)
    return records


def latest_legs(records: list[dict]) -> dict[str, dict]:
    """Newest sample per leg: name -> {value, ts, bench}."""
    latest: dict[str, dict] = {}
    for rec in records:            # oldest first: later records win
        for name, value in rec["legs"].items():
            latest[name] = {"value": value, "ts": rec.get("ts"),
                            "bench": rec.get("bench")}
    return latest


# -- budgets ------------------------------------------------------------------


def load_budgets(path: str | Path) -> dict:
    """The budgets file: {"version", "tolerance", "budgets": {...}}."""
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict) \
            or not isinstance(payload.get("budgets"), dict):
        raise ValueError(f"{path}: no budgets section")
    for name, value in payload["budgets"].items():
        if not isinstance(value, (int, float)) or value <= 0:
            raise ValueError(f"{path}: budget {name!r} must be a "
                             f"positive number, got {value!r}")
    payload.setdefault("tolerance", DEFAULT_TOLERANCE)
    return payload


def write_budgets(path: str | Path, latest: dict[str, dict],
                  legs: list[str] | None = None,
                  tolerance: float = DEFAULT_TOLERANCE,
                  headroom: float = DEFAULT_HEADROOM) -> dict:
    """(Re)write the budgets file from the newest samples.

    *legs* restricts which leg names get budgets (default: every leg
    with a sample); *headroom* scales the sample into a ceiling.
    """
    names = sorted(latest.keys() if legs is None else legs)
    budgets = {}
    for name in names:
        if name not in latest:
            raise ValueError(f"no trend sample for leg {name!r}")
        budgets[name] = round(latest[name]["value"] * headroom, 6)
    payload = {"version": TREND_VERSION, "tolerance": tolerance,
               "headroom": headroom, "updated": _utc_now(),
               "budgets": budgets}
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True)
                          + "\n")
    return payload


# -- the gate -----------------------------------------------------------------


def check_gate(latest: dict[str, dict], budgets: dict) -> \
        tuple[list[str], list[str]]:
    """(failures, report lines) for every budgeted leg.

    A leg fails when its newest sample exceeds
    ``budget * (1 + tolerance)`` or when it has no sample at all —
    silently-unmeasured legs must not pass.
    """
    tolerance = float(budgets.get("tolerance", DEFAULT_TOLERANCE))
    failures: list[str] = []
    lines = [f"{'leg':<42} {'latest':>10} {'ceiling':>10}  status"]
    for name, budget in sorted(budgets["budgets"].items()):
        ceiling = budget * (1.0 + tolerance)
        sample = latest.get(name)
        if sample is None:
            failures.append(f"{name}: no trend sample recorded")
            lines.append(f"{name:<42} {'—':>10} {ceiling:>10.3f}  "
                         f"MISSING")
            continue
        value = sample["value"]
        status = "ok" if value <= ceiling else "REGRESSED"
        if value > ceiling:
            failures.append(
                f"{name}: {value:.3f} exceeds budget {budget:.3f} "
                f"+{tolerance * 100:.0f}% (ceiling {ceiling:.3f})")
        lines.append(f"{name:<42} {value:>10.3f} {ceiling:>10.3f}  "
                     f"{status}")
    return failures, lines
