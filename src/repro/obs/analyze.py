"""Trace analysis: span-tree profiles, critical paths, and run diffs.

The tracer writes flat JSONL span records; this module turns one (or
two) of those files into answers:

* :func:`aggregate` folds the span forest into **path statistics** —
  a *path* is the chain of span names from a root down
  (``flow/flow.prepare/prepare.place/place.solve``), and each path
  accumulates call count, **total** (cumulative) time and **self**
  time (total minus the time spent in child spans).  Self time is
  what profilers sort by: it localizes where wall-clock is actually
  burned rather than inherited.
* :func:`critical_path` walks the longest root's tree picking the
  slowest child at every level — the chain a latency optimisation has
  to shorten for the run to get faster.
* :func:`diff_profiles` aligns two runs' path statistics and reports
  where wall-clock moved: per-path deltas of self and total time,
  with paths that appear or disappear marked as such.  This is the
  evidence format hot-path PRs cite.

Worker spans merged from pool processes join the same forest (their
parents are parent-process span ids), so cross-process time lands on
the dispatching path.  Records whose parent id is missing from the
file (e.g. the head of a rotated trace) are treated as roots rather
than dropped.

Everything operates on plain record dicts, so tests can hand-build
span forests without touching the tracer.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path


def read_spans(path: str | Path) -> list[dict]:
    """Load one JSONL trace file into a record list."""
    records = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: not a JSON span record: {exc}") \
                    from None
    return records


@dataclass
class PathStat:
    """Accumulated timing for one span path."""

    count: int = 0
    total_us: float = 0.0
    self_us: float = 0.0

    def add(self, total_us: float, self_us: float) -> None:
        self.count += 1
        self.total_us += total_us
        self.self_us += self_us


@dataclass
class TraceProfile:
    """One analyzed trace: path stats plus forest-level summary."""

    paths: dict[str, PathStat] = field(default_factory=dict)
    spans: int = 0
    roots: int = 0
    wall_us: float = 0.0
    #: (path, total_us, self_us) steps of the longest root's slowest
    #: descent, root first.
    critical: list[tuple[str, float, float]] = field(default_factory=list)


def _forest(records: list[dict]):
    """(by_id, children, roots): links resolved, dangling parents
    promoted to roots."""
    by_id = {rec["id"]: rec for rec in records}
    children: dict[str, list[dict]] = {}
    roots: list[dict] = []
    for rec in records:
        parent = rec.get("parent")
        if parent is not None and parent in by_id:
            children.setdefault(parent, []).append(rec)
        else:
            roots.append(rec)
    return by_id, children, roots


def aggregate(records: list[dict]) -> TraceProfile:
    """Fold a span-record list into a :class:`TraceProfile`."""
    profile = TraceProfile(spans=len(records))
    if not records:
        return profile
    by_id, children, roots = _forest(records)
    profile.roots = len(roots)
    profile.wall_us = sum(rec["dur_us"] for rec in roots)

    # Paths resolve iteratively (flows nest thousands of spans deep is
    # false today, but recursion limits are not a contract we want).
    path_cache: dict[str, str] = {}

    def path_of(rec: dict) -> str:
        chain: list[dict] = []
        node = rec
        prefix = ""
        while True:
            cached = path_cache.get(node["id"])
            if cached is not None:
                prefix = cached
                break
            chain.append(node)
            parent = node.get("parent")
            if parent is None or parent not in by_id:
                break
            node = by_id[parent]
        text = prefix
        for entry in reversed(chain):
            text = f"{text}/{entry['name']}" if text else entry["name"]
            path_cache[entry["id"]] = text
        return path_cache[rec["id"]]

    for rec in records:
        child_us = sum(c["dur_us"] for c in children.get(rec["id"], ()))
        self_us = max(0.0, rec["dur_us"] - child_us)
        stat = profile.paths.setdefault(path_of(rec), PathStat())
        stat.add(rec["dur_us"], self_us)

    profile.critical = critical_path(records)
    return profile


def critical_path(records: list[dict]) -> list[tuple[str, float, float]]:
    """The slowest descent from the longest root:
    ``[(path, total_us, self_us), ...]`` root first."""
    if not records:
        return []
    _, children, roots = _forest(records)
    node = max(roots, key=lambda rec: rec["dur_us"])
    steps = []
    path = ""
    while True:
        path = f"{path}/{node['name']}" if path else node["name"]
        kids = children.get(node["id"], [])
        child_us = sum(c["dur_us"] for c in kids)
        steps.append((path, node["dur_us"],
                      max(0.0, node["dur_us"] - child_us)))
        if not kids:
            return steps
        node = max(kids, key=lambda rec: rec["dur_us"])


# -- rendering ----------------------------------------------------------------


def _fmt_us(us: float) -> str:
    """Adaptive duration: us under 1 ms, ms under 1 s, else seconds."""
    if abs(us) >= 1e6:
        return f"{us / 1e6:.2f}s"
    if abs(us) >= 1e3:
        return f"{us / 1e3:.1f}ms"
    return f"{us:.0f}us"


def render_report(profile: TraceProfile, top: int = 20,
                  by: str = "self") -> str:
    """Human-readable profile: summary, critical path, hot paths."""
    if by not in ("self", "total"):
        raise ValueError(f"sort key must be 'self' or 'total', got {by!r}")
    lines = [f"spans {profile.spans}  roots {profile.roots}  "
             f"wall {_fmt_us(profile.wall_us)}", ""]
    if profile.critical:
        lines.append("critical path (slowest child at every level):")
        for path, total_us, self_us in profile.critical:
            name = path.rsplit("/", 1)[-1]
            depth = path.count("/")
            lines.append(f"  {'  ' * depth}{name:<{max(1, 36 - 2 * depth)}}"
                         f" {_fmt_us(total_us):>10}"
                         f"  self {_fmt_us(self_us):>10}")
        lines.append("")
    key = (lambda item: item[1].self_us) if by == "self" \
        else (lambda item: item[1].total_us)
    ranked = sorted(profile.paths.items(), key=key, reverse=True)
    lines.append(f"hot paths by {by} time "
                 f"(top {min(top, len(ranked))} of {len(ranked)}):")
    lines.append(f"  {'self':>10} {'total':>10} {'count':>7}  path")
    for path, stat in ranked[:top]:
        lines.append(f"  {_fmt_us(stat.self_us):>10} "
                     f"{_fmt_us(stat.total_us):>10} {stat.count:>7}  "
                     f"{path}")
    return "\n".join(lines)


@dataclass
class PathDelta:
    """One aligned path in a trace diff."""

    path: str
    a: PathStat | None
    b: PathStat | None

    @property
    def d_self_us(self) -> float:
        return ((self.b.self_us if self.b else 0.0)
                - (self.a.self_us if self.a else 0.0))

    @property
    def d_total_us(self) -> float:
        return ((self.b.total_us if self.b else 0.0)
                - (self.a.total_us if self.a else 0.0))


def diff_profiles(a: TraceProfile, b: TraceProfile) -> list[PathDelta]:
    """Aligned per-path deltas, largest |self-time move| first."""
    deltas = [PathDelta(path, a.paths.get(path), b.paths.get(path))
              for path in sorted(a.paths.keys() | b.paths.keys())]
    deltas.sort(key=lambda d: abs(d.d_self_us), reverse=True)
    return deltas


def render_diff(a: TraceProfile, b: TraceProfile, top: int = 20,
                label_a: str = "A", label_b: str = "B") -> str:
    """Where did the wall-clock move between run *a* and run *b*?"""
    d_wall = b.wall_us - a.wall_us
    pct = (d_wall / a.wall_us * 100.0) if a.wall_us else 0.0
    lines = [f"wall {label_a} {_fmt_us(a.wall_us)} -> {label_b} "
             f"{_fmt_us(b.wall_us)}  ({'+' if d_wall >= 0 else ''}"
             f"{_fmt_us(d_wall)}, {pct:+.1f}%)", ""]
    deltas = [d for d in diff_profiles(a, b) if d.d_self_us != 0.0
              or d.a is None or d.b is None]
    lines.append(f"top self-time moves (top {min(top, len(deltas))} "
                 f"of {len(deltas)}):")
    lines.append(f"  {'d_self':>10} {'d_total':>10} "
                 f"{'count':>11}  path")
    for delta in deltas[:top]:
        count_a = delta.a.count if delta.a else 0
        count_b = delta.b.count if delta.b else 0
        mark = ""
        if delta.a is None:
            mark = "  [new]"
        elif delta.b is None:
            mark = "  [gone]"
        sign = "+" if delta.d_self_us >= 0 else ""
        signt = "+" if delta.d_total_us >= 0 else ""
        lines.append(f"  {sign + _fmt_us(delta.d_self_us):>10} "
                     f"{signt + _fmt_us(delta.d_total_us):>10} "
                     f"{count_a:>5}->{count_b:<5} "
                     f"{delta.path}{mark}")
    return "\n".join(lines)


def report_file(path: str | Path, top: int = 20, by: str = "self") -> str:
    """:func:`render_report` straight off a JSONL file (CLI path)."""
    return render_report(aggregate(read_spans(path)), top=top, by=by)


def diff_files(path_a: str | Path, path_b: str | Path,
               top: int = 20) -> str:
    """:func:`render_diff` straight off two JSONL files (CLI path)."""
    return render_diff(aggregate(read_spans(path_a)),
                       aggregate(read_spans(path_b)), top=top,
                       label_a=str(path_a), label_b=str(path_b))
