#!/usr/bin/env python3
"""Training deep-dive — run Algorithm 1 by hand and inspect the model.

Shows the pieces the one-call flow hides: path extraction, hypergraph
conversion, DGI pretraining curves, fine-tuning, per-net probabilities
vs the exact oracle, and checkpointing the trained model.

Run:  python examples/train_and_inspect_gnn.py
"""

import numpy as np

from repro import FlowConfig, SeedBundle, TechSetup
from repro.core import (TrainConfig, build_dataset, decide_mls_nets,
                        train_gnn_mls)
from repro.core.flow import prepare_design
from repro.mls import route_with_mls
from repro.netlist.generators import MaeriConfig, generate_maeri
from repro.nn import save_params
from repro.timing import run_sta


def main() -> None:
    tech = TechSetup.build("16nm", "28nm", 6)
    seeds = SeedBundle(3)
    config = FlowConfig(selector="gnn", target_freq_mhz=1900)

    print("== Build + place + route the baseline ==")
    design = prepare_design(
        lambda libs, s: generate_maeri(MaeriConfig(pe_count=16,
                                                   bandwidth=8), libs, s),
        tech, seeds, config)
    router, routing = route_with_mls(design, set())
    report = run_sta(design)
    print(f"  baseline WNS {report.wns_ps:.1f} ps, "
          f"{report.num_violating} violating endpoints")

    print("== Extract paths, label with the what-if oracle ==")
    dataset = build_dataset(design, router, routing, report,
                            num_paths=300, num_labeled=150)
    print(f"  {len(dataset.graphs)} paths, "
          f"{len(dataset.labeled_graphs)} labeled, "
          f"positive label fraction {dataset.label_balance():.2f}")

    print("== Algorithm 1: DGI pretrain + MLP fine-tune ==")
    model = train_gnn_mls(dataset, seeds,
                          TrainConfig(dgi_epochs=3, finetune_epochs=10),
                          log=lambda msg: print("  " + msg))

    print("== Inspect: model probability vs oracle label ==")
    probs = model.net_probabilities(dataset.labeled_graphs)
    pos = [probs[n] for n, lab in dataset.net_labels.items()
           if lab.helps and n in probs]
    neg = [probs[n] for n, lab in dataset.net_labels.items()
           if not lab.helps and n in probs]
    print(f"  mean p(MLS) on oracle-positive nets: {np.mean(pos):.2f}")
    print(f"  mean p(MLS) on oracle-negative nets: {np.mean(neg):.2f}")

    print("== Decide + targeted routing ==")
    selected = decide_mls_nets(model)
    router, routing = route_with_mls(design, selected)
    after = run_sta(design)
    print(f"  GNN-MLS WNS {after.wns_ps:.1f} ps "
          f"({len(routing.mls_applied_nets())} nets shared)")

    save_params(model.encoder, "/tmp/gnn_mls_encoder.npz")
    save_params(model.head, "/tmp/gnn_mls_head.npz")
    print("== Checkpoints written to /tmp/gnn_mls_{encoder,head}.npz ==")


if __name__ == "__main__":
    main()
