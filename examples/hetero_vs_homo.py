#!/usr/bin/env python3
"""Mixed-node vs homogeneous integration — where MLS pays off.

Runs the same MAERI fabric as a heterogeneous stack (16 nm logic +
28 nm memory) and a homogeneous one (28 nm + 28 nm), comparing how
much each integration gains from SOTA-style vs GNN-selected Metal
Layer Sharing.  Reproduces the Table IV vs Table V contrast: hetero
designs gain the most (16 nm local wires are slow, the neighbour's
28 nm thick metals are fast), and indiscriminate SOTA can *hurt*
homogeneous stacks.

Run:  python examples/hetero_vs_homo.py
"""

from repro import FlowConfig, SeedBundle, TechSetup, run_flow
from repro.netlist.generators import MaeriConfig, generate_maeri


def factory(libraries, seeds):
    return generate_maeri(MaeriConfig(pe_count=16, bandwidth=8),
                          libraries, seeds)


def run_stack(name: str, tech: TechSetup, freq: float) -> None:
    print(f"\n=== {name} (target {freq:.0f} MHz) ===")
    rows = {}
    for selector in ("none", "sota", "gnn"):
        report = run_flow(
            factory, tech, SeedBundle(2),
            FlowConfig(selector=selector, target_freq_mhz=freq,
                       num_paths=300, num_labeled=150, pdn=False))
        rows[selector] = report.row()
    print(f"{'flow':<8}{'WNS (ps)':>12}{'TNS (ns)':>12}{'#vio':>8}"
          f"{'#MLS':>8}")
    for selector, row in rows.items():
        print(f"{selector:<8}{row['wns_ps']:>12.1f}{row['tns_ns']:>12.2f}"
              f"{row['vio_paths']:>8.0f}{row['mls_nets']:>8.0f}")
    base_tns = rows["none"]["tns_ns"]
    if base_tns < 0:
        gain = 100 * (1 - rows["gnn"]["tns_ns"] / base_tns)
        print(f"GNN-MLS TNS improvement vs No-MLS: {gain:.0f}%")


def main() -> None:
    run_stack("heterogeneous 16nm+28nm",
              TechSetup.build("16nm", "28nm", 6), freq=1900)
    run_stack("homogeneous 28nm+28nm",
              TechSetup.build("28nm", "28nm", 6), freq=1150)


if __name__ == "__main__":
    main()
