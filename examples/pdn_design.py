#!/usr/bin/env python3
"""Mixed-node power delivery — Section III-E / Figure 7 / Figure 9.

Builds the heterogeneous power plan (0.9 V memory domain over a
0.81 V logic domain with level shifters on every crossing), sweeps PDN
stripe geometries against the 10 %-of-lowest-VDD IR-drop target, and
prints the logic-tier drop map.

Run:  python examples/pdn_design.py
"""

from repro import FlowConfig, SeedBundle, TechSetup
from repro.core.flow import prepare_design
from repro.mls import route_with_mls
from repro.netlist.generators import MaeriConfig, generate_maeri
from repro.pdn import PdnConfig, build_pdn, size_pdn, solve_irdrop
from repro.power import default_power_plan, estimate_power


def main() -> None:
    tech = TechSetup.build("16nm", "28nm", 6)
    seeds = SeedBundle(5)
    design = prepare_design(
        lambda libs, s: generate_maeri(MaeriConfig(pe_count=16,
                                                   bandwidth=8), libs, s),
        tech, seeds,
        FlowConfig(selector="none", target_freq_mhz=1500, activity=0.25))
    route_with_mls(design, set())
    plan = default_power_plan(design)

    print("== Power plan (Figure 7) ==")
    for domain in plan.domains:
        print(f"  tier {domain.tier} ({domain.name}): {domain.vdd} V")
    print(f"  level shifters inserted: "
          f"{design.notes.get('level_shifters', 0)}")
    power = estimate_power(design, plan, activity=0.25)
    print(f"  total power {power.total_mw:.1f} mW "
          f"(LS overhead {power.level_shifter_mw:.2f} mW)")

    print("\n== PDN geometry sweep ==")
    print(f"{'W (um)':>8}{'P (um)':>8}{'util %':>8}{'drop %':>8}")
    for width, pitch in ((1.0, 14.0), (2.0, 7.0), (3.4, 5.5)):
        config = PdnConfig(width, pitch)
        grid = build_pdn(design, config, tier=0,
                         vdd=plan.domain_of_tier(0).vdd)
        ir = solve_irdrop(design, grid, plan)
        print(f"{width:>8.1f}{pitch:>8.1f}"
              f"{100 * config.utilization:>8.1f}"
              f"{ir.drop_pct_of_lowest:>8.2f}")

    print("\n== Automatic sizing to the 10% target ==")
    sizing = size_pdn(design, target_pct=10.0, plan=plan)
    summary = sizing.summary()
    print(f"  chosen: W={summary['width_um']}um P={summary['pitch_um']}um "
          f"-> utilization {summary['utilization_pct']:.1f}%, "
          f"worst drop {summary['worst_drop_pct']:.2f}%")
    print("  (what's left of the top pair is the MLS routing resource)")

    print("\n== Logic-tier IR-drop map (Figure 9a) ==")
    grid = build_pdn(design, sizing.config, tier=0,
                     vdd=plan.domain_of_tier(0).vdd)
    ir = solve_irdrop(design, grid, plan)
    drop = ir.drop_map_mv()
    scale = " .:-=+*#%@"
    for row in drop[::max(1, drop.shape[0] // 12)]:
        print("  " + "".join(
            scale[min(int(v / max(drop.max(), 1e-9) * 9), 9)]
            for v in row[::max(1, drop.shape[1] // 40)]))
    print(f"  peak drop: {drop.max():.1f} mV")


if __name__ == "__main__":
    main()
