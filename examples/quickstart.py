#!/usr/bin/env python3
"""Quickstart — GNN-MLS on a small MAERI fabric in one page.

Builds a 16-PE heterogeneous (16 nm logic + 28 nm memory) 3D IC,
runs the paper's Figure 4 flow with the GNN selector, and prints the
No-MLS baseline vs GNN-MLS comparison.

Run:  python examples/quickstart.py
"""

from repro import FlowConfig, SeedBundle, TechSetup, run_flow
from repro.netlist.generators import MaeriConfig, generate_maeri


def factory(libraries, seeds):
    """A 16-PE MAERI-like accelerator (paper's motivation design)."""
    return generate_maeri(MaeriConfig(pe_count=16, bandwidth=8),
                          libraries, seeds)


def main() -> None:
    tech = TechSetup.build("16nm", "28nm", beol_layers=6)

    print("== Step 1: baseline (no MLS) ==")
    base = run_flow(factory, tech, SeedBundle(1),
                    FlowConfig(selector="none", target_freq_mhz=1800,
                               pdn=False))
    print(f"  WNS {base.row()['wns_ps']:8.1f} ps   "
          f"TNS {base.row()['tns_ns']:7.2f} ns   "
          f"violations {base.row()['vio_paths']:.0f}")

    print("== Step 2: GNN-MLS (train + decide + targeted routing) ==")
    gnn = run_flow(factory, tech, SeedBundle(1),
                   FlowConfig(selector="gnn", target_freq_mhz=1800,
                              num_paths=300, num_labeled=150, pdn=False))
    row = gnn.row()
    print(f"  WNS {row['wns_ps']:8.1f} ps   TNS {row['tns_ns']:7.2f} ns   "
          f"violations {row['vio_paths']:.0f}")
    print(f"  MLS applied to {row['mls_nets']:.0f} nets "
          f"(selection+training took {row['runtime_min']:.1f} min)")

    wns_gain = 100 * (1 - row["wns_ps"] / base.row()["wns_ps"]) \
        if base.row()["wns_ps"] < 0 else 0.0
    print(f"== Result: WNS improved by {wns_gain:.0f}% ==")


if __name__ == "__main__":
    main()
