#!/usr/bin/env python3
"""DFT trade-off study — making MLS designs testable (Figure 6).

Every MLS net is an open connection during individual-die test
(Figure 3), so coverage craters without repair.  This example
quantifies the damage, then applies both of the paper's DFT
strategies and compares fault counts, coverage and timing cost
(Table III).

Run:  python examples/dft_tradeoff.py
"""

from repro import FlowConfig, SeedBundle, TechSetup
from repro.core.flow import prepare_design
from repro.dft import (NET_BASED, WIRE_BASED, apply_mls_dft,
                       die_test_fault_sim, insert_scan)
from repro.mls import oracle_select, route_with_mls
from repro.netlist.generators import MaeriConfig, generate_maeri
from repro.rng import stream
from repro.timing import run_sta


def build():
    tech = TechSetup.build("16nm", "28nm", 6)
    seeds = SeedBundle(4)
    config = FlowConfig(selector="oracle", target_freq_mhz=1900,
                        with_scan=True)
    design = prepare_design(
        lambda libs, s: generate_maeri(MaeriConfig(pe_count=16,
                                                   bandwidth=8), libs, s),
        tech, seeds, config)
    router, routing = route_with_mls(design, set())
    selected = oracle_select(design, router, routing)
    router, routing = route_with_mls(design, selected)
    return design, router, routing


def main() -> None:
    print("== The problem: MLS opens during die-level test ==")
    design, router, routing = build()
    print(f"  {len(routing.mls_applied_nets())} MLS nets "
          "(= open connections in each die's test)")
    broken = die_test_fault_sim(design, stream("dft-ex", 1),
                                patterns=128, with_dft=False)
    print(f"  die-test coverage without DFT: "
          f"{broken.coverage_pct:.2f}%  "
          f"({broken.detected_total}/{broken.total_faults} faults)")

    for strategy in (NET_BASED, WIRE_BASED):
        design, router, routing = build()
        wns_before = run_sta(design).wns_ps
        crossings, cells = apply_mls_dft(design, router, routing, strategy)
        wns_after = run_sta(design).wns_ps
        sim = die_test_fault_sim(design, stream("dft-ex", 1),
                                 patterns=128, with_dft=True)
        print(f"\n== {strategy} DFT ==")
        print(f"  repaired {crossings} crossings with {cells} cells")
        print(f"  total faults    : {sim.total_faults}")
        print(f"  detected faults : {sim.detected_total}")
        print(f"  coverage        : {sim.coverage_pct:.2f}%")
        print(f"  WNS cost        : {wns_before:.1f} -> "
              f"{wns_after:.1f} ps")


if __name__ == "__main__":
    main()
